"""Store garbage collection: pruning version-mismatched cell records."""

import json

import pytest

from repro._version import __version__
from repro.experiments.cli import main
from repro.experiments.store import STORE_SCHEMA, ArtifactStore, cell_key


def _record(schema=STORE_SCHEMA, code=__version__, value=1.0):
    identity = {"schema": schema, "code": code, "value": value}
    return cell_key(identity), {
        "identity": identity,
        "data": {"metric": value},
        "timing": {"seconds": 0.1},
    }


@pytest.fixture
def populated_store(tmp_path):
    store = ArtifactStore(tmp_path / "cells")
    keys = {}
    for name, rec in (
        ("current", _record(value=1.0)),
        ("current2", _record(value=2.0)),
        ("old_schema", _record(schema=STORE_SCHEMA - 1, value=3.0)),
        ("old_code", _record(code="0.0.0-ancient", value=4.0)),
    ):
        key, record = rec
        store.put(key, record)
        keys[name] = key
    # One unreadable record
    corrupt = store.path_for("ff" * 32)
    corrupt.parent.mkdir(parents=True, exist_ok=True)
    corrupt.write_text("{not json", encoding="utf-8")
    keys["corrupt"] = "ff" * 32
    return store, keys


class TestPrune:
    def test_removes_stale_keeps_current(self, populated_store):
        store, keys = populated_store
        report = store.prune(code=__version__)
        assert report.kept == 2
        assert report.deleted == 3
        stale_keys = {k for k, _ in report.stale}
        assert stale_keys == {keys["old_schema"], keys["old_code"], keys["corrupt"]}
        assert keys["current"] in store
        assert keys["old_schema"] not in store
        assert keys["corrupt"] not in store

    def test_dry_run_deletes_nothing(self, populated_store):
        store, keys = populated_store
        before = sorted(store.keys())
        report = store.prune(code=__version__, dry_run=True)
        assert report.deleted == 0
        assert len(report.stale) == 3
        assert sorted(store.keys()) == before

    def test_code_none_keeps_other_codes(self, populated_store):
        store, keys = populated_store
        report = store.prune()  # no code filter: only schema + corruption
        stale_keys = {k for k, _ in report.stale}
        assert keys["old_code"] not in stale_keys
        assert keys["old_schema"] in stale_keys

    def test_reasons_are_explanatory(self, populated_store):
        store, _ = populated_store
        reasons = dict(store.prune(code=__version__, dry_run=True).stale)
        assert any("schema" in r for r in reasons.values())
        assert any("code" in r for r in reasons.values())
        assert any("unreadable" in r for r in reasons.values())


class TestGcCli:
    def test_gc_requires_store(self):
        with pytest.raises(SystemExit):
            main(["gc"])

    def test_gc_refuses_nonexistent_store(self, tmp_path):
        """A mistyped --store must not be silently created as empty."""
        missing = tmp_path / "no-such-store"
        with pytest.raises(SystemExit) as exc:
            main(["gc", "--store", str(missing)])
        assert "does not exist" in str(exc.value)
        assert not missing.exists()

    def test_gc_dry_run_then_delete(self, populated_store, capsys, tmp_path):
        store, keys = populated_store
        rc = main(["gc", "--store", str(store.root), "--dry-run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "would delete 3" in out
        assert len(list(store.keys())) == 5

        rc = main(["gc", "--store", str(store.root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "deleted 3" in out
        assert sorted(store.keys()) == sorted([keys["current"], keys["current2"]])

    def test_gc_out_file(self, populated_store, tmp_path):
        store, _ = populated_store
        out_file = tmp_path / "gc.txt"
        assert main(["gc", "--store", str(store.root), "--dry-run",
                     "--out", str(out_file)]) == 0
        assert "stale record" in out_file.read_text()

    def test_gc_survives_resumed_sweep_records(self, tmp_path):
        """gc on a store written by a real (smoke) sweep keeps everything."""
        store = ArtifactStore(tmp_path / "cells")
        key, record = _record()
        store.put(key, record)
        report = store.prune(code=__version__)
        assert report.kept == 1 and report.deleted == 0
        # the record file is valid JSON on disk
        assert json.loads(store.path_for(key).read_text())["identity"]["code"] == __version__
