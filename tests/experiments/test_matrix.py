"""Tests for declarative scenario matrices (TOML/JSON)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.matrix import (
    BUILTIN_SCENARIOS,
    Scenario,
    config_from_mapping,
    get_scenario,
    load_matrix,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.topologies import PAPER_TOPOLOGIES, WIDENED_TOPOLOGIES

TOML = """
[defaults]
reps = 2
nh = 4
cases = ["c2", "c3"]

[scenario.quick]
description = "tiny sweep"
instances = ["p2p-Gnutella"]
topologies = ["grid4x4", "dragonfly4x2"]

[scenario.deeper]
topologies = ["hq4"]
nh = 6
"""

JSON = """
{
  "defaults": {"reps": 2},
  "scenario": {
    "quick": {"topologies": ["grid4x4"], "description": "json flavor"}
  }
}
"""


class TestLoadMatrix:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "sweeps.toml"
        path.write_text(TOML)
        scenarios = load_matrix(path)
        assert list(scenarios) == ["quick", "deeper"]
        quick = scenarios["quick"]
        assert isinstance(quick, Scenario)
        assert quick.description == "tiny sweep"
        assert quick.config.repetitions == 2  # from defaults
        assert quick.config.cases == ("c2", "c3")
        assert quick.config.topologies == ("grid4x4", "dragonfly4x2")
        assert scenarios["deeper"].config.n_hierarchies == 6  # override wins

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "sweeps.json"
        path.write_text(JSON)
        scenarios = load_matrix(path)
        assert scenarios["quick"].config.repetitions == 2
        assert scenarios["quick"].description == "json flavor"

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "sweeps.yaml"
        path.write_text("scenario: {}")
        with pytest.raises(ConfigurationError):
            load_matrix(path)

    def test_missing_scenarios_table(self, tmp_path):
        path = tmp_path / "sweeps.toml"
        path.write_text("[defaults]\nreps = 1\n")
        with pytest.raises(ConfigurationError):
            load_matrix(path)

    def test_unknown_key_fails_fast(self, tmp_path):
        path = tmp_path / "sweeps.toml"
        path.write_text("[scenario.bad]\nrepetitionz = 3\n")
        with pytest.raises(ConfigurationError, match="bad"):
            load_matrix(path)

    def test_unknown_topology_fails_fast(self, tmp_path):
        path = tmp_path / "sweeps.toml"
        path.write_text('[scenario.bad]\ntopologies = ["klein-bottle"]\n')
        with pytest.raises(ConfigurationError, match="klein-bottle"):
            load_matrix(path)


class TestConfigFromMapping:
    def test_aliases(self):
        config = config_from_mapping({"reps": 9, "nh": 3})
        assert config.repetitions == 9 and config.n_hierarchies == 3

    def test_mapping_beats_defaults(self):
        config = config_from_mapping({"reps": 9}, {"reps": 1, "nh": 3})
        assert config.repetitions == 9 and config.n_hierarchies == 3

    def test_lists_become_tuples(self):
        config = config_from_mapping({"cases": ["c1"]})
        assert config.cases == ("c1",)

    def test_bad_case_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_mapping({"cases": ["c9"]})


class TestBuiltins:
    def test_names(self):
        assert set(BUILTIN_SCENARIOS) == {"paper", "widened", "smoke", "wide"}

    def test_wide_scenario_covers_wide_topologies(self):
        from repro.experiments.topologies import WIDE_TOPOLOGIES

        wide = BUILTIN_SCENARIOS["wide"].config
        assert wide.topologies == WIDE_TOPOLOGIES
        assert "fattree2x7" in wide.topologies
        # instances must be at least as large as the biggest PE count
        assert wide.n_min >= 1024

    def test_smoke_includes_a_wide_label_topology(self):
        assert "fattree4x3" in BUILTIN_SCENARIOS["smoke"].config.topologies

    def test_paper_matches_defaults(self):
        assert BUILTIN_SCENARIOS["paper"].config == ExperimentConfig()

    def test_widened_extends_paper(self):
        topos = BUILTIN_SCENARIOS["widened"].config.topologies
        assert topos == PAPER_TOPOLOGIES + WIDENED_TOPOLOGIES

    def test_smoke_is_small(self):
        cfg = BUILTIN_SCENARIOS["smoke"].config
        assert cfg.n_max <= 256 and cfg.repetitions == 1

    def test_get_scenario_builtin(self):
        assert get_scenario("paper").name == "paper"

    def test_get_scenario_unknown(self):
        with pytest.raises(ConfigurationError):
            get_scenario("nope")

    def test_get_scenario_from_file(self, tmp_path):
        path = tmp_path / "sweeps.toml"
        path.write_text(TOML)
        assert get_scenario("deeper", path).config.n_hierarchies == 6
        with pytest.raises(ConfigurationError):
            get_scenario("paper", path)  # builtins not merged into files
