"""Tests for the quotient/geometric-mean machinery (paper section 7.1)."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    MinMeanMax,
    aggregate_over_instances,
    geometric_mean,
    geometric_std,
    summarize_cell,
)


class TestMinMeanMax:
    def test_of(self):
        s = MinMeanMax.of([3.0, 1.0, 2.0])
        assert (s.min, s.mean, s.max) == (1.0, 2.0, 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MinMeanMax.of([])

    def test_divided_by(self):
        q = MinMeanMax.of([2.0, 4.0]).divided_by(MinMeanMax.of([1.0, 2.0]))
        assert (q.min, q.mean, q.max) == (2.0, 2.0, 2.0)

    def test_divide_by_zero_inf(self):
        q = MinMeanMax.of([1.0]).divided_by(MinMeanMax.of([0.0]))
        assert q.min == float("inf")


class TestGeometricStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_mean_of_constant(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_std([-1.0])

    def test_geometric_std_constant_is_one(self):
        assert geometric_std([5.0, 5.0]) == pytest.approx(1.0)

    def test_geometric_std_spread(self):
        assert geometric_std([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestSummarizeCell:
    def test_paper_quotients(self):
        """min/mean/max of TIMER divided by min/mean/max before TIMER."""
        s = summarize_cell(
            times=[2.0, 4.0],
            baseline_times=[4.0, 4.0],
            cuts_before=[10.0, 10.0],
            cuts_after=[11.0, 13.0],
            cocos_before=[100.0, 200.0],
            cocos_after=[50.0, 80.0],
        )
        assert s.q_time.min == pytest.approx(0.5)
        assert s.q_time.mean == pytest.approx(0.75)
        assert s.q_cut.mean == pytest.approx(1.2)
        assert s.q_coco.min == pytest.approx(0.5)
        assert s.q_coco.max == pytest.approx(0.4)  # 80/200: qmin>qmax possible

    def test_qmin_can_exceed_qmax(self):
        """The paper notes qmin values can exceed qmean/qmax; reproduce."""
        s = summarize_cell(
            times=[1.0],
            baseline_times=[1.0],
            cuts_before=[1.0],
            cuts_after=[1.0],
            cocos_before=[10.0, 100.0],
            cocos_after=[9.0, 20.0],
        )
        assert s.q_coco.min > s.q_coco.max


class TestAggregate:
    def test_over_instances(self):
        cells = [
            summarize_cell([1], [2], [10], [11], [100], [90]),
            summarize_cell([2], [2], [10], [12], [100], [60]),
        ]
        agg = aggregate_over_instances(cells)
        assert agg["q_time"]["mean"] == pytest.approx(np.sqrt(0.5 * 1.0))
        assert agg["q_coco"]["mean"] == pytest.approx(np.sqrt(0.9 * 0.6))
        assert "mean_gstd" in agg["q_cut"]
