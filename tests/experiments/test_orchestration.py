"""Parallel/resume orchestration tests (ISSUE 2 acceptance criteria).

The sweeps here are acceptance-shaped: >= 2 instances x >= 3 topologies
(one from the widened interconnect set), run sequentially and with two
workers, persisted to artifact stores.  "Byte-identical" means the
deterministic section of every cell record -- identity + data -- compares
equal as canonical JSON bytes; wall-clock timings are honest
measurements and live outside that section by design.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cases import CaseRun
from repro.experiments.cli import main
from repro.experiments.runner import (
    ExperimentConfig,
    cell_identity,
    run_experiment,
)
from repro.experiments.store import ArtifactStore, cell_key, deterministic_bytes

CONFIG = ExperimentConfig(
    instances=("p2p-Gnutella", "PGPgiantcompo"),
    topologies=("grid4x4", "hq4", "dragonfly4x2"),  # dragonfly: widened set
    cases=("c2", "c4"),
    repetitions=1,
    n_hierarchies=2,
    divisor=1024,
    n_min=96,
    n_max=128,
    seed=11,
)
N_CELLS = 2 * 3 * 2  # instances x topologies x cases (x 1 rep)


@pytest.fixture(scope="module")
def sequential(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("cells-seq")
    result = run_experiment(CONFIG, jobs=1, store=store_dir)
    return result, ArtifactStore(store_dir)


@pytest.fixture(scope="module")
def parallel(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("cells-par")
    result = run_experiment(CONFIG, jobs=2, store=store_dir)
    return result, ArtifactStore(store_dir)


class TestParallelDeterminism:
    def test_everything_computed(self, sequential, parallel):
        assert sequential[0].cells_computed == N_CELLS
        assert parallel[0].cells_computed == N_CELLS
        assert parallel[0].jobs == 2

    def test_same_cell_keys(self, sequential, parallel):
        assert set(sequential[1].keys()) == set(parallel[1].keys())
        assert len(sequential[1]) == N_CELLS

    def test_cell_for_cell_identical_json(self, sequential, parallel):
        _, seq_store = sequential
        _, par_store = parallel
        for key in seq_store.keys():
            seq_bytes = deterministic_bytes(seq_store.get(key))
            par_bytes = deterministic_bytes(par_store.get(key))
            assert seq_bytes == par_bytes, f"cell {key} diverged across job counts"

    def test_quality_aggregates_identical(self, sequential, parallel):
        seq_agg = sequential[0].aggregate()
        par_agg = parallel[0].aggregate()
        for topo in CONFIG.topologies:
            for case in CONFIG.cases:
                for metric in ("q_cut", "q_coco"):  # q_time is wall clock
                    assert seq_agg[topo][case][metric] == par_agg[topo][case][metric]

    def test_partition_shared_within_rep(self, sequential):
        # all three topologies have 16 PEs -> one partition per (instance, rep)
        result, _ = sequential
        assert set(result.partition_times) == {
            ("p2p-Gnutella", 16),
            ("PGPgiantcompo", 16),
        }
        for times in result.partition_times.values():
            assert len(times) == CONFIG.repetitions


class TestResume:
    def test_resume_recomputes_nothing(self, sequential):
        _, store = sequential
        before = {p: p.stat().st_mtime_ns for p in store.root.rglob("*.json")}
        resumed = run_experiment(CONFIG, jobs=2, store=store, resume=True)
        assert resumed.cells_computed == 0
        assert resumed.cells_cached == N_CELLS
        after = {p: p.stat().st_mtime_ns for p in store.root.rglob("*.json")}
        assert before == after, "resume must not touch completed cells"

    def test_resumed_result_matches(self, sequential):
        result, store = sequential
        resumed = run_experiment(CONFIG, jobs=1, store=store, resume=True)
        assert resumed.aggregate() == result.aggregate()
        assert resumed.partition_times == result.partition_times
        assert resumed.instance_stats == result.instance_stats

    def test_partial_store_fills_only_gaps(self, sequential, tmp_path):
        _, full_store = sequential
        # Clone the store, delete two cells, resume: exactly 2 recomputed.
        clone = ArtifactStore(tmp_path / "clone")
        keys = sorted(full_store.keys())
        for key in keys[2:]:
            clone.put(key, full_store.get(key))
        resumed = run_experiment(CONFIG, jobs=1, store=clone, resume=True)
        assert resumed.cells_computed == 2
        assert resumed.cells_cached == N_CELLS - 2
        for key in keys[:2]:
            assert deterministic_bytes(clone.get(key)) == deterministic_bytes(
                full_store.get(key)
            )

    def test_growing_the_sweep_reuses_cells(self, sequential, tmp_path):
        # A new topology joins the matrix: only its cells are computed.
        _, full_store = sequential
        clone = ArtifactStore(tmp_path / "grown")
        for key in full_store.keys():
            clone.put(key, full_store.get(key))
        grown = dataclasses.replace(
            CONFIG, topologies=CONFIG.topologies + ("torus4x4",)
        )
        resumed = run_experiment(grown, jobs=1, store=clone, resume=True)
        assert resumed.cells_cached == N_CELLS
        assert resumed.cells_computed == 2 * 1 * 2  # instances x new topo x cases

    def test_resume_requires_store(self):
        with pytest.raises(ConfigurationError):
            run_experiment(CONFIG, resume=True)


class TestCellIdentity:
    def test_execution_knobs_excluded(self):
        verbose = dataclasses.replace(CONFIG, verbose=True)
        a = cell_identity(CONFIG, "p2p-Gnutella", 0, "grid4x4", "c2")
        b = cell_identity(verbose, "p2p-Gnutella", 0, "grid4x4", "c2")
        assert cell_key(a) == cell_key(b)

    def test_other_axes_excluded(self):
        # Dropping a topology must not invalidate the remaining cells.
        narrowed = dataclasses.replace(CONFIG, topologies=("grid4x4",))
        a = cell_identity(CONFIG, "p2p-Gnutella", 0, "grid4x4", "c2")
        b = cell_identity(narrowed, "p2p-Gnutella", 0, "grid4x4", "c2")
        assert cell_key(a) == cell_key(b)

    def test_result_relevant_knobs_included(self):
        for change in ({"seed": 12}, {"n_hierarchies": 3}, {"divisor": 512},
                       {"epsilon": 0.1}, {"n_min": 97}, {"n_max": 129}):
            other = dataclasses.replace(CONFIG, **change)
            a = cell_identity(CONFIG, "p2p-Gnutella", 0, "grid4x4", "c2")
            b = cell_identity(other, "p2p-Gnutella", 0, "grid4x4", "c2")
            assert cell_key(a) != cell_key(b), change


class TestCaseRunPayload:
    def test_round_trip(self, sequential):
        result, _ = sequential
        run = result.cells[0].runs[0]
        assert isinstance(run, CaseRun)
        data, timing = run.to_payload()
        assert set(timing) == set(CaseRun.TIMING_FIELDS)
        assert not set(timing) & set(data)
        assert CaseRun.from_payload(data, timing) == run

    def test_ignores_store_extras(self, sequential):
        _, store = sequential
        record = store.get(next(iter(store.keys())))
        run = CaseRun.from_payload(record["data"], record["timing"])
        assert run.coco_before > 0  # pe_count/instance_n extras dropped


class TestValidation:
    def test_unknown_topology(self):
        bad = dataclasses.replace(CONFIG, topologies=("klein-bottle",))
        with pytest.raises(ConfigurationError):
            run_experiment(bad)

    def test_unknown_case(self):
        bad = dataclasses.replace(CONFIG, cases=("c9",))
        with pytest.raises(ConfigurationError):
            run_experiment(bad)

    def test_zero_repetitions(self):
        bad = dataclasses.replace(CONFIG, repetitions=0)
        with pytest.raises(ConfigurationError):
            run_experiment(bad)


class TestCliOrchestration:
    def test_sweep_resume_via_cli(self, tmp_path, capsys):
        store_dir = tmp_path / "cli-cells"
        argv = [
            "sweep",
            "--instances", "p2p-Gnutella",
            "--topologies", "grid4x4", "fattree4x2",
            "--cases", "c2",
            "--reps", "1", "--nh", "1",
            "--divisor", "2048", "--seed", "5",
            "--jobs", "2",
            "--store", str(store_dir),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 computed, 0 replayed" in out
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 replayed" in out

    def test_resume_without_store_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--resume"])

    def test_matrix_requires_scenario(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--matrix", "x.toml"])
@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("cells-shard")
    result = run_experiment(CONFIG, jobs=2, store=store_dir, dispatch="shards")
    return result, ArtifactStore(store_dir)


class TestShardedDispatch:
    """dispatch="shards": topology-pinned fan-out, same bytes."""

    def test_everything_computed(self, sharded):
        assert sharded[0].cells_computed == N_CELLS
        assert sharded[0].cells_cached == 0

    def test_cell_for_cell_identical_to_sequential(self, sequential, sharded):
        _, seq_store = sequential
        _, shard_store = sharded
        assert set(seq_store.keys()) == set(shard_store.keys())
        for key in seq_store.keys():
            assert deterministic_bytes(seq_store.get(key)) == (
                deterministic_bytes(shard_store.get(key))
            ), f"cell {key} diverged under sharded dispatch"

    def test_resume_stays_exact_under_shards(self, sharded):
        _, store = sharded
        resumed = run_experiment(
            CONFIG, jobs=2, store=store, resume=True, dispatch="shards"
        )
        assert resumed.cells_computed == 0
        assert resumed.cells_cached == N_CELLS

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(CONFIG, jobs=2, dispatch="bogus")
