"""Sweep crash recovery: requeue, poison isolation, exact --resume."""

import pytest

from repro.errors import PermanentError
from repro.serve.faults import FAULTS_ENV, FaultPlan
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.store import ArtifactStore


def _config(**overrides):
    base = dict(
        instances=("p2p-Gnutella",),
        topologies=("grid4x4",),
        cases=("c2",),
        repetitions=2,
        n_hierarchies=1,
        divisor=1024,
        n_min=64,
        n_max=96,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def clean_faults():
    import os

    saved = os.environ.pop(FAULTS_ENV, None)
    yield
    if saved is None:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = saved


class TestCrashRecovery:
    def test_killed_worker_requeues_and_results_match(self, monkeypatch):
        baseline = run_experiment(_config(), jobs=2)
        assert baseline.worker_restarts == 0
        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(kill_task_indices=(0,)).to_json()
        )
        recovered = run_experiment(_config(), jobs=2)
        assert recovered.worker_restarts >= 1
        assert recovered.cells_computed == baseline.cells_computed
        for base_cell, rec_cell in zip(baseline.cells, recovered.cells):
            assert base_cell.instance == rec_cell.instance
            for a, b in zip(base_cell.runs, rec_cell.runs):
                assert a.coco_after == b.coco_after
                assert a.cut_after == b.cut_after
                assert a.hierarchies_accepted == b.hierarchies_accepted

    def test_inline_path_untouched_by_faults(self, monkeypatch):
        # jobs=1 never spawns workers; the kill plan must not fire.
        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(kill_task_indices=(0,)).to_json()
        )
        result = run_experiment(_config(), jobs=1)
        assert result.cells_computed == 2 and result.worker_restarts == 0


class TestPoisonedSweep:
    def test_failed_task_reported_successes_stored(self, tmp_path, monkeypatch):
        # "rep=1" appears only in the second task's repr: that task's
        # worker dies every generation, exhausting crash recovery.  The
        # sweep must store the surviving task's cells, then raise naming
        # the failed (instance, rep).
        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(poison_markers=("rep=1",)).to_json()
        )
        store_root = tmp_path / "cells"
        with pytest.raises(PermanentError, match="rep1") as err:
            run_experiment(_config(), jobs=2, store=store_root)
        assert "1 sweep task(s) failed" in str(err.value)
        assert "PoisonRequestError" in str(err.value)
        store = ArtifactStore(store_root)
        assert len(list(store.keys())) == 1  # rep 0 persisted

        # A resumed, fault-free rerun computes only the poisoned cell.
        monkeypatch.delenv(FAULTS_ENV)
        result = run_experiment(
            _config(), jobs=2, store=store_root, resume=True
        )
        assert result.cells_cached == 1 and result.cells_computed == 1
