"""Tests for the experiment runner, reporting and CLI (small factorials)."""

import pytest

from repro.experiments.cases import CASES, run_case
from repro.experiments.cli import build_parser, main, resolve_config
from repro.experiments.reporting import (
    render_fig5,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    to_csv,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.topologies import make_topology
from repro.experiments.instances import generate_instance
from repro.partitioning.kway import partition_kway
from repro.core.config import TimerConfig


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(
        instances=("p2p-Gnutella", "PGPgiantcompo"),
        topologies=("grid4x4", "hq4"),
        cases=("c1", "c2"),
        repetitions=2,
        n_hierarchies=2,
        divisor=1024,
        n_min=128,
        n_max=192,
        seed=7,
    )
    return run_experiment(config)


class TestRunCase:
    def test_single_cell(self):
        ga = generate_instance("p2p-Gnutella", seed=1, divisor=1024, n_min=128, n_max=192)
        gp, pc = make_topology("grid4x4")
        part = partition_kway(ga, gp.n, seed=1)
        run, result = run_case(
            "c2", ga, gp, pc, part, 0.5, "grid4x4", seed=3,
            timer_config=TimerConfig(n_hierarchies=2),
        )
        assert run.case == "c2"
        assert run.coco_before > 0
        assert run.timer_seconds > 0
        assert run.partition_seconds == 0.5
        assert 0 < run.coco_quotient < 2

    def test_unknown_case(self):
        ga = generate_instance("p2p-Gnutella", seed=1, divisor=1024, n_min=128, n_max=192)
        gp, pc = make_topology("grid4x4")
        part = partition_kway(ga, gp.n, seed=1)
        with pytest.raises(KeyError):
            run_case("c7", ga, gp, pc, part, 0.1, "grid4x4", 1, TimerConfig(n_hierarchies=1))

    def test_cases_registry(self):
        assert list(CASES) == ["c1", "c2", "c3", "c4"]


class TestRunner:
    def test_cell_counts(self, small_result):
        # 2 instances x 2 topologies x 2 cases
        assert len(small_result.cells) == 8
        for cell in small_result.cells:
            assert len(cell.runs) == 2  # repetitions

    def test_partition_sharing(self, small_result):
        # both topologies have 16 PEs -> one partition per (instance, rep)
        for (name, k), times in small_result.partition_times.items():
            assert k == 16
            assert len(times) == 2

    def test_aggregate_shape(self, small_result):
        agg = small_result.aggregate()
        assert set(agg) == {"grid4x4", "hq4"}
        assert set(agg["grid4x4"]) == {"c1", "c2"}
        entry = agg["grid4x4"]["c1"]
        assert set(entry) == {"q_time", "q_cut", "q_coco"}

    def test_quotients_sane(self, small_result):
        agg = small_result.aggregate()
        for topo in agg.values():
            for case in topo.values():
                assert 0.2 < case["q_coco"]["mean"] < 1.5
                assert 0.5 < case["q_cut"]["mean"] < 2.0

    def test_instance_stats_recorded(self, small_result):
        assert set(small_result.instance_stats) == {"p2p-Gnutella", "PGPgiantcompo"}


class TestReporting:
    def test_table1_lists_all(self):
        text = render_table1(divisor=1024, seed=3)
        for name in ("p2p-Gnutella", "as-skitter", "coPapersDBLP"):
            assert name in text

    def test_table2_contains_topologies(self, small_result):
        text = render_table2(small_result)
        assert "grid4x4" in text and "hq4" in text
        assert "qTmean" in text

    def test_table3_rows(self, small_result):
        text = render_table3(small_result)
        assert "p2p-Gnutella" in text
        assert "Geometric mean" in text

    def test_fig5_series(self, small_result):
        text = render_fig5(small_result, "c1")
        assert "minCut" in text and "maxCo" in text
        assert "grid4x4" in text

    def test_summary_mentions_families(self, small_result):
        text = render_summary(small_result)
        assert "grid" in text

    def test_csv_rows(self, small_result):
        csv = to_csv(small_result)
        lines = csv.strip().splitlines()
        assert len(lines) == 1 + 8 * 2  # header + cells * reps
        assert lines[0].startswith("instance,topology,case")


class TestCli:
    def test_parser_defaults(self):
        # Sizing flags default to "unset" so scenarios can fill them in;
        # the resolved config must still match the historical defaults.
        args = build_parser().parse_args(["table2"])
        assert args.reps is None and args.nh is None
        config = resolve_config(args)
        assert config.repetitions == 3 and config.n_hierarchies == 8
        assert config.divisor == 64 and config.seed == 2018

    def test_flags_override_scenario(self):
        args = build_parser().parse_args(["table2", "--scenario", "smoke", "--reps", "7"])
        config = resolve_config(args)
        assert config.repetitions == 7  # explicit flag wins
        assert config.n_hierarchies == 2  # from the smoke scenario

    def test_table1_runs(self, capsys):
        rc = main(["table1", "--divisor", "1024"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig5_small(self, capsys, tmp_path):
        out_file = tmp_path / "fig5.txt"
        rc = main(
            [
                "fig5",
                "--instances", "p2p-Gnutella",
                "--topologies", "grid4x4",
                "--cases", "c2",
                "--reps", "1",
                "--nh", "1",
                "--divisor", "2048",
                "--out", str(out_file),
            ]
        )
        assert rc == 0
        assert "Figure 5" in out_file.read_text()
