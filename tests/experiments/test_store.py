"""Tests for the content-addressed cell artifact store."""

import json
import os

import pytest

from repro.experiments.store import (
    STORE_SCHEMA,
    ArtifactStore,
    canonical_json,
    cell_key,
    deterministic_bytes,
)


def _record(tag="a", value=1.5):
    identity = {"schema": STORE_SCHEMA, "instance": tag, "rep": 0}
    return cell_key(identity), {
        "schema": STORE_SCHEMA,
        "identity": identity,
        "data": {"coco_after": value},
        "timing": {"timer_seconds": 0.123},
    }


class TestCanonicalJson:
    def test_key_order_invariant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_float_round_trip(self):
        x = 0.1 + 0.2  # not exactly 0.3
        assert json.loads(canonical_json({"x": x}))["x"] == x

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestCellKey:
    def test_stable(self):
        identity = {"instance": "pgp", "rep": 1, "seed": 2018}
        assert cell_key(identity) == cell_key(dict(reversed(identity.items())))

    def test_sensitive_to_values(self):
        assert cell_key({"seed": 1}) != cell_key({"seed": 2})


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "cells")
        key, record = _record()
        assert store.get(key) is None
        assert key not in store
        path = store.put(key, record)
        assert path.is_file()
        assert store.get(key) == record
        assert key in store

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, record = _record()
        path = store.put(key, record)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_keys_and_len(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = set()
        for i in range(5):
            key, record = _record(tag=f"inst{i}")
            store.put(key, record)
            keys.add(key)
        assert set(store.keys()) == keys
        assert len(store) == 5

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, record = _record()
        path = store.put(key, record)
        path.write_text("{ not json", encoding="utf-8")
        assert store.get(key) is None

    def test_wrong_shape_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, record = _record()
        path = store.put(key, record)
        path.write_text('{"identity": {}}', encoding="utf-8")
        assert store.get(key) is None

    @pytest.mark.parametrize("missing", ["identity", "data", "timing"])
    def test_missing_section_is_a_miss(self, tmp_path, missing):
        # A parseable record lacking any section must degrade to a
        # recompute, never crash a resumed sweep downstream.
        store = ArtifactStore(tmp_path)
        key, record = _record()
        del record[missing]
        store.put(key, record)
        assert store.get(key) is None

    def test_overwrite_is_atomic_no_temp_residue(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, record = _record()
        store.put(key, record)
        store.put(key, record)
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_canonical_bytes_on_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, record = _record()
        path = store.put(key, record)
        assert path.read_bytes() == canonical_json(record).encode("utf-8")

    def test_creates_root(self, tmp_path):
        root = tmp_path / "deep" / "nested"
        ArtifactStore(root)
        assert root.is_dir()


class TestDeterministicBytes:
    def test_excludes_timing(self):
        key, a = _record()
        _, b = _record()
        b["timing"] = {"timer_seconds": 99.0}
        assert deterministic_bytes(a) == deterministic_bytes(b)

    def test_includes_data(self):
        _, a = _record(value=1.0)
        _, b = _record(value=2.0)
        assert deterministic_bytes(a) != deterministic_bytes(b)


class TestPermissionFailure:
    def test_unreadable_store_dir_degrades_to_miss(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores permission bits")
        store = ArtifactStore(tmp_path)
        key, record = _record()
        path = store.put(key, record)
        path.chmod(0)
        assert store.get(key) is None
