"""Tests for experiment topologies and the instance suite."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.instances import (
    INSTANCES,
    generate_instance,
    get_instance,
    instance_names,
    scaled_n,
)
from repro.experiments.topologies import (
    PAPER_TOPOLOGIES,
    WIDE_TOPOLOGIES,
    WIDENED_TOPOLOGIES,
    make_topology,
    topology_names,
)
from repro.graphs.algorithms import is_connected
from repro.partialcube.verify import verify_labeling


class TestTopologies:
    def test_paper_set(self):
        assert PAPER_TOPOLOGIES == (
            "grid16x16",
            "grid8x8x8",
            "torus16x16",
            "torus8x8x8",
            "hq8",
        )

    @pytest.mark.parametrize(
        "name", ["grid4x4", "torus4x4", "hq4", "cbt4", "path16", "fattree4x2", "dragonfly4x2"]
    )
    def test_small_topologies_labeled(self, name):
        gp, pc = make_topology(name)
        assert verify_labeling(gp, pc.labels)

    def test_widened_set_registered(self):
        assert WIDENED_TOPOLOGIES == ("fattree2x5", "dragonfly8x5", "torus8x8x4")
        assert set(WIDENED_TOPOLOGIES) <= set(topology_names())
        assert not set(WIDENED_TOPOLOGIES) & set(PAPER_TOPOLOGIES)

    @pytest.mark.parametrize(
        "name,n,dim",
        [("fattree2x5", 63, 62), ("dragonfly8x5", 256, 9), ("torus8x8x4", 256, 10)],
    )
    def test_widened_topologies_labeled(self, name, n, dim):
        gp, pc = make_topology(name)
        assert gp.n == n
        assert pc.dim == dim
        assert verify_labeling(gp, pc.labels)

    def test_wide_set_registered(self):
        assert WIDE_TOPOLOGIES == (
            "fattree2x7",
            "fattree4x3",
            "dragonfly16x6",
            "torus16x16",
        )
        assert set(WIDE_TOPOLOGIES) <= set(topology_names())

    @pytest.mark.parametrize(
        "name,n,dim",
        [
            ("fattree2x7", 255, 254),  # 4-word labels
            ("fattree4x3", 85, 84),  # 2-word labels
            ("fattree2x6", 127, 126),
            ("dragonfly16x6", 1024, 14),  # narrow but 1024 PEs
        ],
    )
    def test_wide_topologies_labeled(self, name, n, dim):
        gp, pc = make_topology(name)
        assert gp.n == n
        assert pc.dim == dim
        assert verify_labeling(gp, pc.labels)
        assert (pc.labels.ndim == 2) == (dim > 63)

    def test_paper_pe_counts(self):
        for name, n in [("grid16x16", 256), ("grid8x8x8", 512), ("hq8", 256)]:
            gp, _ = make_topology(name)
            assert gp.n == n

    def test_cache_returns_same_object(self):
        a = make_topology("grid4x4")
        b = make_topology("grid4x4")
        assert a[0] is b[0]

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            make_topology("klein-bottle")

    def test_names_listing(self):
        assert set(PAPER_TOPOLOGIES) <= set(topology_names())
        assert topology_names(paper_only=True) == PAPER_TOPOLOGIES


class TestInstances:
    def test_fifteen_rows(self):
        assert len(INSTANCES) == 15
        assert len(instance_names()) == 15

    def test_paper_sizes_recorded(self):
        spec = get_instance("as-skitter")
        assert spec.paper_n == 554_930

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            get_instance("not-a-network")

    def test_scaled_n_clipped(self):
        spec = get_instance("p2p-Gnutella")
        assert scaled_n(spec, divisor=1, n_max=1000) == 1000
        assert scaled_n(spec, divisor=10**6, n_min=384) == 384

    @pytest.mark.parametrize("name", ["p2p-Gnutella", "citationCiteseer", "web-Google"])
    def test_generation_connected_named(self, name):
        g = generate_instance(name, seed=1, divisor=128)
        assert g.name == name
        assert is_connected(g)
        assert g.n >= 100

    def test_deterministic(self):
        a = generate_instance("PGPgiantcompo", seed=5, divisor=128)
        b = generate_instance("PGPgiantcompo", seed=5, divisor=128)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_instance("PGPgiantcompo", seed=5, divisor=128)
        b = generate_instance("PGPgiantcompo", seed=6, divisor=128)
        assert a != b

    def test_all_instances_generate_small(self):
        for spec in INSTANCES:
            g = generate_instance(spec.name, seed=3, divisor=1024, n_min=128, n_max=256)
            assert g.n > 32, spec.name
            assert is_connected(g), spec.name
