"""Tests for BFS/components/bipartite/diameter, cross-checked vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.algorithms import (
    all_pairs_distances,
    bfs_distances,
    bfs_order,
    bipartition_colors,
    connected_components,
    diameter,
    eccentricity_center,
    is_bipartite,
    is_connected,
    largest_component,
    weighted_degree,
)
from repro.graphs.builder import from_edges, to_networkx


class TestBfs:
    def test_path_distances(self):
        g = gen.path(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreached_marked(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        d = bfs_distances(g, 0)
        assert d[1] == 1 and d[2] == -1 and d[3] == -1

    def test_matches_networkx(self, ba_graph):
        d = bfs_distances(ba_graph, 0)
        ref = nx.single_source_shortest_path_length(to_networkx(ba_graph), 0)
        for v, dist in ref.items():
            assert d[v] == dist

    def test_bfs_order_visits_component(self, ba_graph):
        order = bfs_order(ba_graph, 0)
        assert len(order) == ba_graph.n
        assert order[0] == 0
        assert len(set(order.tolist())) == ba_graph.n


class TestAllPairs:
    def test_symmetric(self, small_grid):
        d = all_pairs_distances(small_grid)
        assert np.array_equal(d, d.T)
        assert (np.diag(d) == 0).all()

    def test_grid_manhattan(self):
        g = gen.grid(3, 4)
        d = all_pairs_distances(g)
        # vertex id = x * 4 + y; distance is Manhattan
        for u in range(12):
            for v in range(12):
                ux, uy = divmod(u, 4)
                vx, vy = divmod(v, 4)
                assert d[u, v] == abs(ux - vx) + abs(uy - vy)

    def test_torus_wraps(self):
        g = gen.torus(6, 6)
        d = all_pairs_distances(g)
        assert d.max() == 6  # 3 + 3


class TestComponents:
    def test_single_component(self, small_grid):
        assert is_connected(small_grid)
        assert (connected_components(small_grid) == 0).all()

    def test_two_components(self):
        g = from_edges(5, [(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert len(set(comp.tolist())) == 3  # vertex 4 isolated

    def test_largest_component(self):
        g = from_edges(6, [(0, 1), (1, 2), (3, 4)])
        giant, ids = largest_component(g)
        assert giant.n == 3
        assert sorted(ids.tolist()) == [0, 1, 2]


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(gen.cycle(6))

    def test_odd_cycle(self):
        assert not is_bipartite(gen.cycle(5))
        assert bipartition_colors(gen.cycle(5)) is None

    def test_colors_valid(self, small_grid):
        colors = bipartition_colors(small_grid)
        us, vs, _ = small_grid.edge_arrays()
        assert (colors[us] != colors[vs]).all()

    def test_triangle_not_bipartite(self, triangle):
        assert not is_bipartite(triangle)


class TestDiameterAndCenter:
    def test_path_diameter(self):
        assert diameter(gen.path(10)) == 9

    def test_hypercube_diameter(self):
        assert diameter(gen.hypercube(5)) == 5

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            diameter(from_edges(3, [(0, 1)]))

    def test_center_of_path(self):
        c = eccentricity_center(gen.path(9))
        assert c == 4

    def test_matches_per_source_bfs(self):
        # diameter/eccentricity now ride the bit-packed multi-source BFS;
        # pin equivalence with the scalar per-source loop they replaced.
        graphs = [
            gen.torus(4, 6),
            gen.grid(3, 5),
            gen.fat_tree(3, 2),
            gen.dragonfly(4, 2),
            gen.barabasi_albert(70, 2, seed=3),
        ]
        for g in graphs:
            eccs = [int(bfs_distances(g, v).max()) for v in range(g.n)]
            assert diameter(g) == max(eccs)
            assert eccentricity_center(g) == int(np.argmin(eccs))

    def test_weighted_degree(self, triangle):
        assert weighted_degree(triangle).tolist() == [4.0, 3.0, 5.0]
