"""Tests for graph construction paths."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builder import (
    GraphBuilder,
    from_arrays,
    from_networkx,
    to_networkx,
)


class TestGraphBuilder:
    def test_duplicate_edges_merge(self):
        g = GraphBuilder(2).add_edge(0, 1, 1.0).add_edge(1, 0, 2.5).build()
        assert g.m == 1
        assert g.edge_weight(0, 1) == 3.5

    def test_add_edges_mixed_arity(self):
        g = GraphBuilder(3).add_edges([(0, 1), (1, 2, 4.0)]).build()
        assert g.edge_weight(0, 1) == 1.0
        assert g.edge_weight(1, 2) == 4.0

    def test_rejects_self_loop(self):
        with pytest.raises(GraphFormatError):
            GraphBuilder(2).add_edge(1, 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            GraphBuilder(2).add_edge(0, 5)

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphFormatError):
            GraphBuilder(2).add_edge(0, 1, -2.0)

    def test_vertex_weights(self):
        g = GraphBuilder(2).add_edge(0, 1).set_vertex_weights([2.0, 3.0]).build()
        assert g.vertex_weights.tolist() == [2.0, 3.0]

    def test_vertex_weights_shape_checked(self):
        with pytest.raises(GraphFormatError):
            GraphBuilder(2).set_vertex_weights([1.0])

    def test_negative_n(self):
        with pytest.raises(GraphFormatError):
            GraphBuilder(-1)


class TestFromArrays:
    def test_basic(self):
        g = from_arrays(3, np.asarray([0, 1]), np.asarray([1, 2]))
        assert g.m == 2

    def test_drops_self_loops(self):
        g = from_arrays(3, np.asarray([0, 1, 2]), np.asarray([1, 1, 2]))
        assert g.m == 1

    def test_merges_duplicates(self):
        g = from_arrays(
            2, np.asarray([0, 1]), np.asarray([1, 0]), np.asarray([1.0, 2.0])
        )
        assert g.m == 1
        assert g.edge_weight(0, 1) == 3.0

    def test_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_arrays(2, np.asarray([0]), np.asarray([1, 0]))

    def test_out_of_range(self):
        with pytest.raises(GraphFormatError):
            from_arrays(2, np.asarray([0]), np.asarray([7]))


class TestNetworkxRoundtrip:
    def test_round_trip(self, ba_graph):
        nx_g = to_networkx(ba_graph)
        back = from_networkx(nx_g)
        assert back.n == ba_graph.n
        assert back.m == ba_graph.m
        assert back == ba_graph

    def test_weights_carried(self, triangle):
        nx_g = to_networkx(triangle)
        assert nx_g[1][2]["weight"] == 2.0

    def test_directed_rejected(self):
        import networkx as nx

        with pytest.raises(GraphFormatError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_cross_check_degrees(self, ba_graph):
        import networkx as nx

        nx_g = to_networkx(ba_graph)
        nx_deg = np.asarray([d for _, d in sorted(nx_g.degree())])
        assert np.array_equal(nx_deg, ba_graph.degrees)
