"""Tests for the complex-network suite wrapper and its structural claims."""

import numpy as np

from repro.graphs.generators import complex_networks as cn
from repro.graphs.algorithms import is_connected


class TestWrapper:
    def test_names_match_experiments(self):
        from repro.experiments.instances import instance_names

        assert cn.names() == instance_names()

    def test_generate_delegates(self):
        g = cn.generate("PGPgiantcompo", seed=4, divisor=1024, n_min=128, n_max=192)
        assert g.name == "PGPgiantcompo"
        assert is_connected(g)


class TestStructuralProfiles:
    """The stand-ins must look like their paper counterparts' *types*."""

    def test_citation_networks_heavy_tailed(self):
        g = cn.generate("citationCiteseer", seed=1, divisor=256)
        deg = g.degrees
        assert deg.max() > 6 * np.median(deg)

    def test_coauthor_networks_clustered(self):
        import networkx as nx

        from repro.graphs.builder import to_networkx

        g = cn.generate("coAuthorsDBLP", seed=2, divisor=256)
        cc = nx.average_clustering(to_networkx(g))
        assert cc > 0.05  # triad-formation model leaves real clustering

    def test_dense_copapers_have_higher_degree(self):
        sparse = cn.generate("PGPgiantcompo", seed=3, divisor=256)
        dense = cn.generate("coPapersDBLP", seed=3, divisor=256)
        assert dense.degrees.mean() > sparse.degrees.mean()

    def test_router_networks_skewed(self):
        g = cn.generate("as-skitter", seed=4, divisor=256)
        deg = g.degrees
        assert deg.max() >= 5 * deg.mean()
