"""Tests for the deterministic topology generators."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.algorithms import diameter, is_connected
from repro.graphs.builder import to_networkx


class TestGrid:
    def test_counts_2d(self):
        g = gen.grid(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 5 * 3  # vertical + horizontal families

    def test_counts_3d(self):
        g = gen.grid(3, 3, 3)
        assert g.n == 27
        assert g.m == 3 * (2 * 3 * 3)

    def test_degenerate_axis(self):
        g = gen.grid(1, 5)
        assert g.n == 5 and g.m == 4  # path

    def test_connected(self):
        assert is_connected(gen.grid(5, 7))

    def test_invalid(self):
        with pytest.raises(ValueError):
            gen.grid(0, 3)


class TestTorus:
    def test_regular_degree(self):
        g = gen.torus(4, 4)
        assert (g.degrees == 4).all()
        assert g.m == 2 * 16

    def test_extent_two_no_parallel_edges(self):
        g = gen.torus(2, 4)
        # extent-2 axis behaves like a grid axis (single edge, not double)
        assert g.degrees.max() == 3

    def test_3d(self):
        g = gen.torus(4, 4, 4)
        assert (g.degrees == 6).all()

    def test_matches_networkx_torus(self):
        ours = gen.torus(4, 6)
        ref = nx.grid_graph(dim=[4, 6], periodic=True)
        assert ours.n == ref.number_of_nodes()
        assert ours.m == ref.number_of_edges()
        assert nx.is_isomorphic(to_networkx(ours), ref)


class TestCyclePath:
    def test_cycle(self):
        g = gen.cycle(8)
        assert (g.degrees == 2).all() and g.m == 8

    def test_cycle_minimum(self):
        with pytest.raises(ValueError):
            gen.cycle(2)

    def test_path(self):
        g = gen.path(6)
        assert g.m == 5
        assert diameter(g) == 5


class TestHypercube:
    @pytest.mark.parametrize("d", [0, 1, 3, 5])
    def test_counts(self, d):
        g = gen.hypercube(d)
        assert g.n == 2**d
        assert g.m == d * 2 ** (d - 1) if d else g.m == 0

    def test_neighbors_differ_one_bit(self):
        g = gen.hypercube(4)
        for u, v, _ in g.edges():
            assert bin(u ^ v).count("1") == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gen.hypercube(-1)


class TestTrees:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            t = gen.random_tree(50, seed=seed)
            assert t.m == t.n - 1
            assert is_connected(t)

    def test_random_tree_tiny(self):
        assert gen.random_tree(1).n == 1
        assert gen.random_tree(2).m == 1

    def test_random_tree_deterministic(self):
        a = gen.random_tree(30, seed=3)
        b = gen.random_tree(30, seed=3)
        assert a == b

    def test_complete_binary_tree(self):
        t = gen.complete_binary_tree(3)
        assert t.n == 15 and t.m == 14
        assert t.degree(0) == 2  # root

    def test_star(self):
        s = gen.star(6)
        assert s.degree(0) == 6
        assert (s.degrees[1:] == 1).all()

    def test_caterpillar(self):
        c = gen.caterpillar(4, 2)
        assert c.n == 12 and c.m == 11
        assert is_connected(c)


class TestFatTree:
    def test_counts(self):
        t = gen.fat_tree(4, 2)
        assert t.n == 1 + 4 + 16
        assert t.m == t.n - 1  # a tree
        assert is_connected(t)

    def test_matches_complete_binary_tree(self):
        a = gen.fat_tree(2, 4)
        b = gen.complete_binary_tree(4)
        assert a.n == b.n and a.m == b.m
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_children_block(self):
        t = gen.fat_tree(3, 2)
        assert sorted(int(v) for v in t.neighbors(0)) == [1, 2, 3]
        assert sorted(int(v) for v in t.neighbors(1)) == [0, 4, 5, 6]

    def test_height_zero(self):
        assert gen.fat_tree(5, 0).n == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            gen.fat_tree(1, 2)
        with pytest.raises(ValueError):
            gen.fat_tree(2, -1)


class TestDragonfly:
    def test_counts(self):
        g = gen.dragonfly(6, 3)
        assert g.n == 6 * 8
        # per vertex: 3 hypercube links + 2 ring links
        assert (g.degrees == 5).all()
        assert is_connected(g)

    def test_two_groups_single_link(self):
        g = gen.dragonfly(2, 2)
        assert g.n == 8
        assert (g.degrees == 3).all()  # 2 cube links + 1 inter-group link

    def test_diameter(self):
        # ring distance (g/2) + hypercube distance (d)
        assert diameter(gen.dragonfly(8, 3)) == 4 + 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            gen.dragonfly(5, 2)  # odd group count breaks the partial cube
        with pytest.raises(ValueError):
            gen.dragonfly(0, 2)
        with pytest.raises(ValueError):
            gen.dragonfly(4, -1)
