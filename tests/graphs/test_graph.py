"""Tests for the CSR Graph type."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builder import from_edges
from repro.graphs.graph import Graph


class TestBasics:
    def test_counts(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3

    def test_degrees(self, triangle):
        assert triangle.degrees.tolist() == [2, 2, 2]
        assert triangle.degree(0) == 2

    def test_neighbors_sorted_access(self, triangle):
        assert set(triangle.neighbors(0).tolist()) == {1, 2}

    def test_edge_weight(self, triangle):
        assert triangle.edge_weight(1, 2) == 2.0
        assert triangle.edge_weight(2, 1) == 2.0
        with pytest.raises(KeyError):
            from_edges(3, [(0, 1)]).edge_weight(0, 2)

    def test_total_edge_weight(self, triangle):
        assert triangle.total_edge_weight() == 6.0

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not from_edges(3, [(0, 1)]).has_edge(1, 2)

    def test_edges_iteration(self, triangle):
        edges = sorted(triangle.edges())
        assert edges == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]

    def test_edge_arrays_half(self, triangle):
        us, vs, ws = triangle.edge_arrays()
        assert len(us) == triangle.m
        assert (us < vs).all()
        assert ws.sum() == 6.0

    def test_empty_graph(self):
        g = from_edges(0, [])
        assert g.n == 0 and g.m == 0

    def test_isolated_vertices(self):
        g = from_edges(5, [(0, 1)])
        assert g.degree(4) == 0


class TestEqualityAndCopy:
    def test_eq(self, triangle):
        other = from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        assert triangle == other
        assert hash(triangle) == hash(other)

    def test_neq_weights(self, triangle):
        other = from_edges(3, [(0, 1, 9.0), (1, 2, 2.0), (0, 2, 3.0)])
        assert triangle != other

    def test_copy_independent(self, triangle):
        c = triangle.copy()
        assert c == triangle
        c.weights[0] = 99.0
        assert c != triangle

    def test_with_unit_weights(self, triangle):
        u = triangle.with_unit_weights()
        assert u.total_edge_weight() == 3.0


class TestSubgraph:
    def test_induced(self, triangle):
        sub, ids = triangle.subgraph(np.asarray([0, 1]))
        assert sub.n == 2 and sub.m == 1
        assert ids.tolist() == [0, 1]
        assert sub.edge_weight(0, 1) == 1.0

    def test_keeps_vertex_weights(self):
        g = from_edges(3, [(0, 1)], vertex_weights=[1.0, 2.0, 3.0])
        sub, _ = g.subgraph(np.asarray([1, 2]))
        assert sub.vertex_weights.tolist() == [2.0, 3.0]

    def test_empty_selection(self, triangle):
        sub, _ = triangle.subgraph(np.asarray([], dtype=np.int64))
        assert sub.n == 0


class TestValidation:
    def test_rejects_asymmetric(self):
        with pytest.raises(GraphFormatError):
            Graph(
                np.asarray([0, 1, 1]),
                np.asarray([1]),
                np.asarray([1.0]),
            )

    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphFormatError):
            Graph(np.asarray([1, 2]), np.asarray([0]), np.asarray([1.0]))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(GraphFormatError):
            Graph(
                np.asarray([0, 1, 2]),
                np.asarray([5, 0]),
                np.asarray([1.0, 1.0]),
            )

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphFormatError):
            Graph(
                np.asarray([0, 1, 2]),
                np.asarray([1, 0]),
                np.asarray([-1.0, -1.0]),
            )

    def test_rejects_self_loop(self):
        with pytest.raises(GraphFormatError):
            Graph(
                np.asarray([0, 1]),
                np.asarray([0]),
                np.asarray([1.0]),
            )


class TestEdgeArraysCache:
    """edge_arrays() is the hot accessor of every objective evaluation; it
    must be computed once per (immutable) graph and reused."""

    def test_second_call_returns_cached_arrays(self, triangle):
        first = triangle.edge_arrays()
        second = triangle.edge_arrays()
        for a, b in zip(first, second):
            assert a is b

    def test_cache_content_correct(self, triangle):
        us, vs, ws = triangle.edge_arrays()
        edges = sorted(zip(us.tolist(), vs.tolist(), ws.tolist()))
        assert edges == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]
        assert (us < vs).all()

    def test_copies_do_not_share_cache(self, triangle):
        original = triangle.edge_arrays()
        dup = triangle.copy()
        assert dup.edge_arrays()[0] is not original[0]
        assert np.array_equal(dup.edge_arrays()[0], original[0])
