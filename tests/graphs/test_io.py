"""Tests for METIS / edge-list I/O."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.graphs.io import (
    from_metis_string,
    read_edgelist,
    read_metis,
    to_metis_string,
    write_edgelist,
    write_metis,
)


class TestMetis:
    def test_round_trip_unweighted(self, small_grid):
        assert from_metis_string(to_metis_string(small_grid)) == small_grid

    def test_round_trip_edge_weights(self, triangle):
        assert from_metis_string(to_metis_string(triangle)) == triangle

    def test_round_trip_vertex_weights(self):
        g = from_edges(3, [(0, 1), (1, 2)], vertex_weights=[1.0, 2.0, 3.0])
        back = from_metis_string(to_metis_string(g))
        assert back.vertex_weights.tolist() == [1.0, 2.0, 3.0]

    def test_round_trip_both_weights(self):
        g = from_edges(3, [(0, 1, 2.5), (1, 2, 4.0)], vertex_weights=[2.0, 1.0, 1.0])
        back = from_metis_string(to_metis_string(g))
        assert back == g

    def test_header_format_flag(self, triangle):
        text = to_metis_string(triangle)
        assert text.splitlines()[0].split()[2] == "01"

    def test_comments_ignored(self):
        text = "% comment\n2 1\n2\n1\n"
        g = read_metis(io.StringIO(text))
        assert g.n == 2 and g.m == 1

    def test_bad_edge_count(self):
        with pytest.raises(GraphFormatError):
            from_metis_string("2 5\n2\n1\n")

    def test_missing_lines(self):
        with pytest.raises(GraphFormatError):
            from_metis_string("3 1\n2\n1\n")

    def test_neighbor_out_of_range(self):
        with pytest.raises(GraphFormatError):
            from_metis_string("2 1\n5\n1\n")

    def test_empty_file(self):
        with pytest.raises(GraphFormatError):
            from_metis_string("")

    def test_file_path_round_trip(self, tmp_path, ba_graph):
        path = tmp_path / "g.graph"
        write_metis(ba_graph, path)
        assert read_metis(path) == ba_graph


class TestEdgeList:
    def test_round_trip(self, tmp_path, triangle):
        path = tmp_path / "g.edges"
        write_edgelist(triangle, path)
        assert read_edgelist(path) == triangle

    def test_header_n_honored(self):
        buf = io.StringIO()
        g = from_edges(5, [(0, 1)])  # isolated trailing vertices
        write_edgelist(g, buf)
        back = read_edgelist(io.StringIO(buf.getvalue()))
        assert back.n == 5

    def test_explicit_n(self):
        back = read_edgelist(io.StringIO("0 1\n"), n=4)
        assert back.n == 4

    def test_comments_and_blank_lines(self):
        text = "# snap header\n\n0 1 2.0\n# more\n1 2\n"
        g = read_edgelist(io.StringIO(text))
        assert g.m == 2
        assert g.edge_weight(0, 1) == 2.0

    def test_self_loops_dropped(self):
        g = read_edgelist(io.StringIO("0 0\n0 1\n"))
        assert g.m == 1

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("7\n"))

    def test_weighted_round_trip_random(self, tmp_path):
        g = gen.erdos_renyi(60, 0.1, seed=5)
        path = tmp_path / "r.edges"
        write_edgelist(g, path)
        assert read_edgelist(path) == g
