"""Tests for the randomized workload generators."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.algorithms import is_connected, largest_component
from repro.graphs.generators.random_graphs import (
    configuration_model,
    powerlaw_degree_sequence,
)


class TestErdosRenyi:
    def test_edge_count_concentrates(self):
        g = gen.erdos_renyi(400, 0.05, seed=1)
        expected = 0.05 * 400 * 399 / 2
        assert 0.8 * expected < g.m < 1.2 * expected

    def test_p_zero_and_one(self):
        assert gen.erdos_renyi(10, 0.0, seed=1).m == 0
        assert gen.erdos_renyi(10, 1.0, seed=1).m == 45

    def test_deterministic(self):
        assert gen.erdos_renyi(50, 0.1, seed=9) == gen.erdos_renyi(50, 0.1, seed=9)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 300, 3
        g = gen.barabasi_albert(n, m, seed=2)
        assert g.m == m + (n - m - 1) * m  # star seed + m per newcomer

    def test_heavy_tail(self):
        g = gen.barabasi_albert(1000, 2, seed=3)
        deg = g.degrees
        assert deg.max() > 8 * np.median(deg)

    def test_connected(self):
        assert is_connected(gen.barabasi_albert(200, 2, seed=4))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(5, 5)
        with pytest.raises(ValueError):
            gen.barabasi_albert(5, 0)


class TestWattsStrogatz:
    def test_beta_zero_is_ring(self):
        g = gen.watts_strogatz(30, 4, 0.0, seed=5)
        assert (g.degrees == 4).all()
        assert g.m == 60

    def test_edge_count_preserved(self):
        g = gen.watts_strogatz(100, 6, 0.3, seed=6)
        assert g.m == 300

    def test_bad_k(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 3, 0.1)
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 12, 0.1)


class TestPowerlawCluster:
    def test_structure(self):
        g = gen.powerlaw_cluster(400, 3, 0.5, seed=7)
        assert g.n == 400
        # about m edges per newcomer
        assert g.m >= 2 * (400 - 4)

    def test_clustering_above_ba(self):
        import networkx as nx

        from repro.graphs.builder import to_networkx

        plc = gen.powerlaw_cluster(400, 3, 0.9, seed=8)
        ba = gen.barabasi_albert(400, 3, seed=8)
        assert nx.average_clustering(to_networkx(plc)) > nx.average_clustering(
            to_networkx(ba)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            gen.powerlaw_cluster(10, 0, 0.5)
        with pytest.raises(ValueError):
            gen.powerlaw_cluster(10, 2, 1.5)


class TestConfigurationModel:
    def test_degree_sum_even_required(self):
        with pytest.raises(ValueError):
            configuration_model([1, 1, 1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            configuration_model([-1, 1])

    def test_degrees_approximate(self):
        seq = powerlaw_degree_sequence(500, 2.3, 2, seed=10)
        g = configuration_model(seq, seed=10)
        # erased model loses a few stubs but the bulk must match
        assert abs(g.degrees.sum() - seq.sum()) / seq.sum() < 0.2

    def test_powerlaw_sequence_bounds(self):
        seq = powerlaw_degree_sequence(200, 2.0, 3, max_degree=20, seed=11)
        assert seq.min() >= 3
        assert seq.max() <= 21  # +1 parity adjustment allowed
        assert seq.sum() % 2 == 0

    def test_sequence_invalid(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 0.5, 2)


class TestRmat:
    def test_size(self):
        g = gen.rmat(8, 8, seed=12)
        assert g.n == 256
        assert g.m > 0

    def test_skew(self):
        g = gen.rmat(10, 8, seed=13)
        giant, _ = largest_component(g)
        deg = giant.degrees
        assert deg.max() > 5 * np.median(deg[deg > 0])

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            gen.rmat(5, 4, a=0.6, b=0.3, c=0.2)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            gen.rmat(0, 4)
