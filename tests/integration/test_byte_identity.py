"""Fixed-seed byte-identity regression on the paper topologies.

The golden hashes below were computed on the last pre-wide-label commit
(PR 3) and pin the ``W == 1`` fast path: any representation change that
perturbs a narrow-label fixed-seed output -- one different swap, one
reordered RNG draw -- fails here with a hash mismatch.  If you change
these numbers you are breaking the byte-identity contract; don't.
"""

import hashlib

import numpy as np
import pytest

from repro.api.pipeline import Pipeline, PipelineConfig
from repro.core.config import TimerConfig
from repro.graphs import generators as gen


def _hash(arr) -> str:
    data = np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes()
    return hashlib.sha256(data).hexdigest()[:16]


#: (topology, sha256(mu_final)[:16], coco_after) on BA(96, 3, seed=7),
#: stream seeding, seed=123, NH=4 -- recorded at PR 3's HEAD.
SMALL_GOLDEN = [
    ("grid4x4", "8157b40da60cd224", 408.0),
    ("torus4x4", "189f8aa8fb457bfb", 342.0),
    ("hq4", "1ae6b42ae0a36845", 342.0),
    ("fattree2x5", "86310f65c8a9222c", 1407.0),
    ("dragonfly4x2", "502a143d94db8e8f", 357.0),
    ("torus8x8", "a03f94c66f0d8d3c", 806.0),
]

#: Same contract on the paper's 256-PE topologies: BA(512, 3, seed=11),
#: raw (CLI) seeding, seed=42, NH=2 -- recorded at PR 3's HEAD.
PAPER_GOLDEN = [
    ("grid16x16", "5000013f5afafb99", 10145.0),
    ("torus16x16", "f398ba72260f52f0", 8189.0),
    ("hq8", "43847e86b1cc0764", 4131.0),
]


class TestNarrowPathByteIdentity:
    @pytest.mark.parametrize("topo,gold,coco", SMALL_GOLDEN)
    def test_small_topologies_stream_policy(self, topo, gold, coco):
        ga = gen.barabasi_albert(96, 3, seed=7)
        pipe = Pipeline(
            topo,
            PipelineConfig(seed_policy="stream", timer=TimerConfig(n_hierarchies=4)),
        )
        res = pipe.run(ga, seed=123)
        assert _hash(res.mu_final) == gold
        assert res.coco_after == coco

    @pytest.mark.parametrize("topo,gold,coco", PAPER_GOLDEN)
    def test_paper_topologies_raw_policy(self, topo, gold, coco):
        ga = gen.barabasi_albert(512, 3, seed=11)
        pipe = Pipeline(
            topo,
            PipelineConfig(seed_policy="raw", timer=TimerConfig(n_hierarchies=2)),
        )
        res = pipe.run(ga, seed=42)
        assert _hash(res.mu_final) == gold
        assert res.coco_after == coco

    def test_labels_stay_narrow_on_paper_topologies(self):
        from repro.api.topology import Topology

        for topo, _, _ in PAPER_GOLDEN:
            labels = Topology.from_name(topo).labeling.labels
            assert labels.ndim == 1 and labels.dtype == np.int64
