"""Tests for the top-level file-based CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import generators as gen
from repro.graphs.io import write_metis


@pytest.fixture
def graph_file(tmp_path):
    g = gen.barabasi_albert(200, 3, seed=1)
    path = tmp_path / "app.graph"
    write_metis(g, path)
    return str(path)


@pytest.fixture
def torus_file(tmp_path):
    g = gen.torus(4, 4)
    path = tmp_path / "torus.graph"
    write_metis(g, path)
    return str(path)


class TestInfoRecognize:
    def test_info(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices: 200" in out

    def test_recognize_positive(self, torus_file, capsys):
        assert main(["recognize", torus_file]) == 0
        assert "dimension 4" in capsys.readouterr().out

    def test_recognize_labels(self, torus_file, capsys):
        assert main(["recognize", torus_file, "--labels"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1 + 16

    def test_recognize_negative(self, graph_file, capsys):
        assert main(["recognize", graph_file]) == 1
        assert "NOT a partial cube" in capsys.readouterr().out


class TestPartitionMapEnhance:
    def test_partition_to_file(self, graph_file, tmp_path):
        out = tmp_path / "part.txt"
        assert main(["partition", graph_file, "8", "-o", str(out)]) == 0
        values = [int(x) for x in out.read_text().split()]
        assert len(values) == 200
        assert set(values) == set(range(8))

    def test_map_by_topology_name(self, graph_file, tmp_path):
        out = tmp_path / "mu.txt"
        assert main(["map", graph_file, "grid4x4", "--case", "c3", "-o", str(out)]) == 0
        values = [int(x) for x in out.read_text().split()]
        assert len(values) == 200 and max(values) < 16

    def test_map_by_topology_file(self, graph_file, torus_file, tmp_path):
        out = tmp_path / "mu.txt"
        assert main(["map", graph_file, torus_file, "-o", str(out)]) == 0
        assert len(out.read_text().split()) == 200

    def test_enhance_round_trip(self, graph_file, tmp_path, capsys):
        mu_file = tmp_path / "mu.txt"
        out_file = tmp_path / "mu2.txt"
        main(["map", graph_file, "grid4x4", "-o", str(mu_file)])
        rc = main(
            ["enhance", graph_file, "grid4x4", str(mu_file),
             "--nh", "4", "-o", str(out_file)]
        )
        assert rc == 0
        before = [int(x) for x in mu_file.read_text().split()]
        after = [int(x) for x in out_file.read_text().split()]
        assert sorted(np.bincount(before, minlength=16)) == sorted(
            np.bincount(after, minlength=16)
        )
        assert "Coco" in capsys.readouterr().err

    def test_enhance_kl_strategy(self, graph_file, tmp_path):
        mu_file = tmp_path / "mu.txt"
        main(["map", graph_file, "grid4x4", "-o", str(mu_file)])
        rc = main(
            ["enhance", graph_file, "grid4x4", str(mu_file),
             "--nh", "2", "--strategy", "kl", "-o", str(tmp_path / "o.txt")]
        )
        assert rc == 0

    def test_enhance_bad_mu_length(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n1\n")
        rc = main(["enhance", graph_file, "grid4x4", str(bad), "--nh", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
