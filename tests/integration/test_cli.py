"""Tests for the top-level file-based CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import generators as gen
from repro.graphs.io import write_metis


@pytest.fixture
def graph_file(tmp_path):
    g = gen.barabasi_albert(200, 3, seed=1)
    path = tmp_path / "app.graph"
    write_metis(g, path)
    return str(path)


@pytest.fixture
def torus_file(tmp_path):
    g = gen.torus(4, 4)
    path = tmp_path / "torus.graph"
    write_metis(g, path)
    return str(path)


class TestInfoRecognize:
    def test_info(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices: 200" in out

    def test_recognize_positive(self, torus_file, capsys):
        assert main(["recognize", torus_file]) == 0
        assert "dimension 4" in capsys.readouterr().out

    def test_recognize_labels(self, torus_file, capsys):
        assert main(["recognize", torus_file, "--labels"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1 + 16

    def test_recognize_negative(self, graph_file, capsys):
        assert main(["recognize", graph_file]) == 1
        assert "NOT a partial cube" in capsys.readouterr().out


class TestPartitionMapEnhance:
    def test_partition_to_file(self, graph_file, tmp_path):
        out = tmp_path / "part.txt"
        assert main(["partition", graph_file, "8", "-o", str(out)]) == 0
        values = [int(x) for x in out.read_text().split()]
        assert len(values) == 200
        assert set(values) == set(range(8))

    def test_map_by_topology_name(self, graph_file, tmp_path):
        out = tmp_path / "mu.txt"
        assert main(["map", graph_file, "grid4x4", "--case", "c3", "-o", str(out)]) == 0
        values = [int(x) for x in out.read_text().split()]
        assert len(values) == 200 and max(values) < 16

    def test_map_by_topology_file(self, graph_file, torus_file, tmp_path):
        out = tmp_path / "mu.txt"
        assert main(["map", graph_file, torus_file, "-o", str(out)]) == 0
        assert len(out.read_text().split()) == 200

    def test_map_rejects_non_partial_cube_topology_file(
        self, graph_file, tmp_path, capsys
    ):
        """Historical contract: map validates the topology up front."""
        from repro.graphs import generators as gen
        from repro.graphs.io import write_metis

        bad = tmp_path / "c5.graph"
        write_metis(gen.cycle(5), bad)  # odd cycle: not even bipartite
        rc = main(["map", graph_file, str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_map_unknown_topology_name(self, graph_file, capsys):
        rc = main(["map", graph_file, "klein-bottle"])
        assert rc == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_enhance_round_trip(self, graph_file, tmp_path, capsys):
        mu_file = tmp_path / "mu.txt"
        out_file = tmp_path / "mu2.txt"
        main(["map", graph_file, "grid4x4", "-o", str(mu_file)])
        rc = main(
            ["enhance", graph_file, "grid4x4", str(mu_file),
             "--nh", "4", "-o", str(out_file)]
        )
        assert rc == 0
        before = [int(x) for x in mu_file.read_text().split()]
        after = [int(x) for x in out_file.read_text().split()]
        assert sorted(np.bincount(before, minlength=16)) == sorted(
            np.bincount(after, minlength=16)
        )
        assert "Coco" in capsys.readouterr().err

    def test_enhance_kl_strategy(self, graph_file, tmp_path):
        mu_file = tmp_path / "mu.txt"
        main(["map", graph_file, "grid4x4", "-o", str(mu_file)])
        rc = main(
            ["enhance", graph_file, "grid4x4", str(mu_file),
             "--nh", "2", "--strategy", "kl", "-o", str(tmp_path / "o.txt")]
        )
        assert rc == 0

    def test_enhance_bad_mu_length(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n1\n")
        rc = main(["enhance", graph_file, "grid4x4", str(bad), "--nh", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestPipelineByteEquivalence:
    """`map`/`enhance` ride repro.api.Pipeline now; on fixed seeds their
    output files must be byte-identical to the pre-redesign hand-wired
    sequence (partition_kway -> compute_initial_mapping -> timer_enhance
    with the CLI's historical raw per-stage seeding)."""

    @pytest.mark.parametrize("case", ["c1", "c2", "c3", "c4"])
    def test_map_output_bytes(self, graph_file, tmp_path, case):
        from repro.experiments.topologies import make_topology
        from repro.graphs.io import read_metis
        from repro.mapping.mapper import compute_initial_mapping
        from repro.partitioning.kway import partition_kway

        out = tmp_path / "mu.txt"
        assert main(
            ["map", graph_file, "grid4x4", "--case", case,
             "--seed", "17", "-o", str(out)]
        ) == 0
        g = read_metis(graph_file, name="app")
        gp, _pc = make_topology("grid4x4")
        part = partition_kway(g, gp.n, epsilon=0.03, seed=17)
        mu, _ = compute_initial_mapping(case, part, gp, seed=17)
        expected = "\n".join(str(int(v)) for v in mu) + "\n"
        assert out.read_text() == expected

    @pytest.mark.parametrize("strategy", ["greedy", "kl"])
    def test_enhance_output_bytes(self, graph_file, tmp_path, strategy):
        from repro.core.config import TimerConfig
        from repro.core.enhancer import timer_enhance
        from repro.experiments.topologies import make_topology
        from repro.graphs.io import read_metis

        mu_file = tmp_path / "mu.txt"
        out = tmp_path / "enh.txt"
        main(["map", graph_file, "grid4x4", "-o", str(mu_file)])
        assert main(
            ["enhance", graph_file, "grid4x4", str(mu_file),
             "--nh", "3", "--strategy", strategy, "--seed", "8",
             "-o", str(out)]
        ) == 0
        g = read_metis(graph_file, name="app")
        gp, pc = make_topology("grid4x4")
        mu0 = np.asarray(
            [int(x) for x in mu_file.read_text().split()], dtype=np.int64
        )
        res = timer_enhance(
            g, gp, pc, mu0, seed=8,
            config=TimerConfig(n_hierarchies=3, swap_strategy=strategy),
        )
        expected = "\n".join(str(int(v)) for v in res.mu_after) + "\n"
        assert out.read_text() == expected


class TestVerifyReportFlags:
    def test_map_with_hooks(self, graph_file, tmp_path, capsys):
        out = tmp_path / "mu.txt"
        assert main(
            ["map", graph_file, "grid4x4", "--verify", "labeling-isometric",
             "--report", "summary", "--report", "quality", "-o", str(out)]
        ) == 0
        err = capsys.readouterr().err
        assert "[report summary]" in err and "[report quality]" in err

    def test_enhance_with_hooks(self, graph_file, tmp_path, capsys):
        mu_file = tmp_path / "mu.txt"
        out = tmp_path / "enh.txt"
        main(["map", graph_file, "grid4x4", "-o", str(mu_file)])
        assert main(
            ["enhance", graph_file, "grid4x4", str(mu_file), "--nh", "1",
             "--verify", "labeling-isometric", "--report", "summary",
             "-o", str(out)]
        ) == 0
        assert "[report summary]" in capsys.readouterr().err

    def test_unknown_verify_lists_known_names(self, graph_file, capsys):
        assert main(["map", graph_file, "grid4x4", "--verify", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown verify 'nope'" in err
        assert "labeling-isometric" in err  # the known names are listed

    def test_unknown_report_lists_known_names(self, graph_file, capsys):
        assert main(["map", graph_file, "grid4x4", "--report", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown report 'nope'" in err and "summary" in err

    def test_hooks_do_not_change_output_bytes(self, graph_file, tmp_path):
        plain = tmp_path / "plain.txt"
        hooked = tmp_path / "hooked.txt"
        main(["map", graph_file, "grid4x4", "--seed", "3", "-o", str(plain)])
        main(
            ["map", graph_file, "grid4x4", "--seed", "3", "-o", str(hooked),
             "--verify", "labeling-isometric", "--report", "quality"]
        )
        assert plain.read_text() == hooked.read_text()


class TestWideTopologyEndToEnd:
    """fattree2x7 (255 PEs, 254 classes) through the full CLI pipeline."""

    @pytest.fixture
    def big_graph_file(self, tmp_path):
        g = gen.barabasi_albert(520, 3, seed=2)
        path = tmp_path / "big.graph"
        write_metis(g, path)
        return str(path)

    def test_map_and_enhance_fattree2x7(self, big_graph_file, tmp_path, capsys):
        mu_file = tmp_path / "mu.txt"
        out = tmp_path / "enh.txt"
        assert main(
            ["map", big_graph_file, "fattree2x7", "--seed", "1",
             "--verify", "labeling-isometric", "-o", str(mu_file)]
        ) == 0
        values = [int(x) for x in mu_file.read_text().split()]
        assert len(values) == 520 and max(values) < 255
        assert main(
            ["enhance", big_graph_file, "fattree2x7", str(mu_file),
             "--nh", "2", "--seed", "1", "-o", str(out)]
        ) == 0
        err = capsys.readouterr().err
        assert "accepted" in err
        enhanced = [int(x) for x in out.read_text().split()]
        assert np.array_equal(
            np.bincount(values, minlength=255),
            np.bincount(enhanced, minlength=255),
        )  # TIMER preserves per-PE block sizes exactly


class TestServeLoadgenCommands:
    """The serving subcommands: parsing, and loadgen against a live server."""

    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--window-ms", "10", "--max-batch", "4",
             "--max-sessions", "2", "--warm", "grid4x4", "--stdio"]
        )
        assert args.window_ms == 10.0 and args.stdio
        assert args.warm == ["grid4x4"]

    def test_loadgen_against_live_server(self, tmp_path, capsys):
        from repro.api.topology import Topology, session_cache
        from repro.serve.service import ServeSettings, ServerThread

        limit = session_cache().max_sessions
        out = tmp_path / "loadgen.json"
        try:
            with ServerThread(
                ServeSettings(port=0, window_ms=10, max_batch=8)
            ) as srv:
                rc = main(
                    ["loadgen", srv.url, "--requests", "6", "--rate", "200",
                     "--nh", "1", "--seed-pool", "1", "--out", str(out)]
                )
        finally:
            session_cache().set_limit(limit)
            Topology.clear_sessions()
        assert rc == 0
        err = capsys.readouterr().err
        assert "6/6 ok" in err
        import json

        report = json.loads(out.read_text())
        assert report["ok"] == 6
        assert report["latency"]["p95"] > 0
