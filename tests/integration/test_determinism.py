"""Determinism and reproducibility guarantees across the whole stack."""

import numpy as np

from repro import timer_enhance
from repro.experiments.instances import generate_instance
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.topologies import make_topology
from repro.mapping import compute_initial_mapping
from repro.partitioning import partition_kway


def test_same_seed_same_everything():
    ga = generate_instance("PGPgiantcompo", seed=11, divisor=1024, n_min=128, n_max=192)
    gp, pc = make_topology("grid4x4")

    def one_run():
        part = partition_kway(ga, gp.n, seed=21)
        mu, _ = compute_initial_mapping("c3", part, gp, seed=22)
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=4, seed=23)
        return res

    a, b = one_run(), one_run()
    assert np.array_equal(a.mu_after, b.mu_after)
    assert a.coco_after == b.coco_after
    assert a.history == b.history


def test_experiment_runner_deterministic_metrics():
    config = ExperimentConfig(
        instances=("p2p-Gnutella",),
        topologies=("grid4x4",),
        cases=("c2",),
        repetitions=1,
        n_hierarchies=2,
        divisor=2048,
        n_min=96,
        n_max=128,
        seed=99,
    )
    r1 = run_experiment(config)
    r2 = run_experiment(config)
    q1 = r1.cells[0].summary().q_coco
    q2 = r2.cells[0].summary().q_coco
    assert q1 == q2  # times differ, quality metrics must not


def test_different_seeds_different_solutions():
    ga = generate_instance("PGPgiantcompo", seed=11, divisor=1024, n_min=128, n_max=192)
    gp, pc = make_topology("grid4x4")
    part = partition_kway(ga, gp.n, seed=1)
    mu, _ = compute_initial_mapping("c2", part, gp, seed=2)
    a = timer_enhance(ga, gp, pc, mu, n_hierarchies=4, seed=100)
    b = timer_enhance(ga, gp, pc, mu, n_hierarchies=4, seed=200)
    # almost surely different label shuffles -> different trajectories
    assert a.history != b.history or not np.array_equal(a.mu_after, b.mu_after)
