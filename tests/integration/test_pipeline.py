"""Integration tests: the full paper pipeline on every topology family."""

import numpy as np
import pytest

from repro import timer_enhance
from repro.experiments.topologies import make_topology
from repro.graphs import generators as gen
from repro.mapping import (
    available_algorithms,
    build_communication_graph,
    coco,
    compute_initial_mapping,
)
from repro.partitioning import partition_kway


@pytest.fixture(scope="module")
def workload():
    return gen.powerlaw_cluster(500, 3, 0.5, seed=42)


@pytest.mark.parametrize("topo", ["grid4x4", "torus44", "hq4", "grid4x4x4"])
def test_full_pipeline_each_topology(workload, topo):
    name = "torus4x4" if topo == "torus44" else topo
    gp, pc = make_topology(name)
    part = partition_kway(workload, gp.n, epsilon=0.03, seed=1)
    part.check_balance(0.03)
    mu, _ = compute_initial_mapping("c2", part, gp, seed=2)
    res = timer_enhance(workload, gp, pc, mu, n_hierarchies=6, seed=3)
    res.labeling.check_bijective()
    assert np.isclose(res.coco_after, coco(workload, gp, res.mu_after))
    # improved or at least not accepted-worse w.r.t. Coco+
    assert all(b <= a + 1e-9 for a, b in zip(res.history, res.history[1:]))


def test_all_cases_end_to_end(workload):
    gp, pc = make_topology("grid4x4")
    part = partition_kway(workload, gp.n, seed=4)
    outcomes = {}
    for case in available_algorithms():
        mu, _ = compute_initial_mapping(case, part, gp, seed=5)
        res = timer_enhance(workload, gp, pc, mu, n_hierarchies=8, seed=6)
        outcomes[case] = res
    # every case must improve Coco on this easy instance
    for case, res in outcomes.items():
        assert res.coco_after <= res.coco_before, case


def test_timer_beats_more_with_more_hierarchies(workload):
    """NH is a quality knob: more hierarchies never hurt (same stream)."""
    gp, pc = make_topology("grid4x4")
    part = partition_kway(workload, gp.n, seed=7)
    mu, _ = compute_initial_mapping("c2", part, gp, seed=8)
    few = timer_enhance(workload, gp, pc, mu, n_hierarchies=2, seed=9)
    many = timer_enhance(workload, gp, pc, mu, n_hierarchies=12, seed=9)
    # identical RNG stream: the first 2 hierarchies coincide, so the
    # 12-hierarchy run's Coco+ trace extends the 2-hierarchy one.
    assert many.history[:2] == few.history
    assert many.history[-1] <= few.history[-1] + 1e-9


def test_partition_change_allowed(workload):
    """TIMER may change the partition of Va (not just the block->PE map)."""
    gp, pc = make_topology("grid4x4")
    part = partition_kway(workload, gp.n, seed=10)
    mu, _ = compute_initial_mapping("c2", part, gp, seed=11)
    res = timer_enhance(workload, gp, pc, mu, n_hierarchies=10, seed=12)
    if res.hierarchies_accepted:
        # vertices moved between blocks (sorted block contents differ)
        assert not np.array_equal(res.mu_after, res.mu_before)


def test_communication_graph_pipeline(workload):
    gp, pc = make_topology("torus4x4")
    part = partition_kway(workload, gp.n, seed=13)
    gc = build_communication_graph(part)
    assert gc.n == gp.n
    assert gc.total_edge_weight() == pytest.approx(part.edge_cut())
