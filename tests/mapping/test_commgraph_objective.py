"""Tests for communication graphs and the Coco objective."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.mapping.commgraph import build_communication_graph
from repro.mapping.objective import (
    average_dilation,
    coco,
    coco_from_labels,
    congestion_estimate,
    maximum_dilation,
    network_cost_matrix,
)
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partitioning.partition import Partition


class TestCommGraph:
    def test_figure1_example(self):
        """Paper Figure 1: contraction aggregates cross-block weights."""
        # 4 blocks of a small graph with known cross weights.
        g = from_edges(
            8,
            [
                (0, 1), (2, 3), (4, 5), (6, 7),  # intra-block
                (0, 2), (1, 3),                   # blocks 0-1: weight 2
                (2, 4), (3, 5), (2, 5),           # blocks 1-2: weight 3
                (5, 7),                           # blocks 2-3: weight 1
            ],
        )
        part = Partition(g, np.asarray([0, 0, 1, 1, 2, 2, 3, 3]), 4)
        gc = build_communication_graph(part)
        assert gc.n == 4
        assert gc.edge_weight(0, 1) == 2.0
        assert gc.edge_weight(1, 2) == 3.0
        assert gc.edge_weight(2, 3) == 1.0
        assert not gc.has_edge(0, 3)

    def test_vertex_weights_are_block_weights(self, ba_graph):
        part = Partition(ba_graph, np.arange(ba_graph.n) % 5, 5)
        gc = build_communication_graph(part)
        assert np.allclose(gc.vertex_weights, part.block_weights())

    def test_empty_blocks_isolated(self, triangle):
        part = Partition(triangle, np.zeros(3, dtype=np.int64), 3)
        gc = build_communication_graph(part)
        assert gc.n == 3 and gc.m == 0


class TestCoco:
    def test_same_pe_zero(self, small_grid):
        ga = gen.path(4)
        mu = np.zeros(4, dtype=np.int64)
        assert coco(ga, small_grid, mu) == 0.0

    def test_hand_computed(self):
        ga = from_edges(3, [(0, 1, 2.0), (1, 2, 5.0)])
        gp = gen.path(3)
        mu = np.asarray([0, 2, 1])
        # edge (0,1): w=2, d(0,2)=2 -> 4 ; edge (1,2): w=5, d(2,1)=1 -> 5
        assert coco(ga, gp, mu) == 9.0

    def test_matches_label_evaluation(self, small_grid, ba_graph):
        pc = partial_cube_labeling(small_grid)
        rng = np.random.default_rng(1)
        mu = rng.integers(0, small_grid.n, ba_graph.n)
        by_dist = coco(ga=ba_graph, gp=small_grid, mu=mu)
        by_labels = coco_from_labels(ba_graph, pc.labels[mu])
        assert np.isclose(by_dist, by_labels)

    def test_out_of_range_mu(self, small_grid):
        ga = gen.path(3)
        with pytest.raises(MappingError):
            coco(ga, small_grid, np.asarray([0, 1, 99]))

    def test_ncm_is_distance_matrix(self, small_torus):
        ncm = network_cost_matrix(small_torus)
        assert ncm.shape == (16, 16)
        assert (np.diag(ncm) == 0).all()
        assert ncm.max() == 4  # 4x4 torus diameter = 2 + 2


class TestDilationCongestion:
    def test_average_dilation_weighted(self):
        ga = from_edges(3, [(0, 1, 1.0), (1, 2, 3.0)])
        gp = gen.path(4)
        mu = np.asarray([0, 1, 3])
        # dilations: 1 (w 1) and 2 (w 3) -> (1*1 + 3*2) / 4
        assert np.isclose(average_dilation(ga, gp, mu), 7 / 4)

    def test_maximum_dilation(self):
        ga = from_edges(3, [(0, 1), (1, 2)])
        gp = gen.path(5)
        mu = np.asarray([0, 4, 3])
        assert maximum_dilation(ga, gp, mu) == 4

    def test_max_dilation_empty(self):
        ga = from_edges(2, [])
        assert maximum_dilation(ga, gen.path(3), np.asarray([0, 1])) == 0

    def test_congestion_path(self):
        # Two unit flows 0->2 on a path share the middle edges.
        ga = from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        gp = gen.path(3)
        mu = np.asarray([0, 2, 0, 2])
        assert congestion_estimate(ga, gp, mu) == 2.0

    def test_congestion_zero_when_local(self, small_grid):
        ga = gen.path(4)
        assert congestion_estimate(ga, small_grid, np.zeros(4, dtype=np.int64)) == 0.0
