"""Tests for the initial-mapping algorithms (cases c1-c4)."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.graphs import generators as gen
from repro.mapping.commgraph import build_communication_graph
from repro.mapping.drb import drb_mapping
from repro.mapping.greedy import greedy_all_c, greedy_min
from repro.mapping.identity import identity_mapping
from repro.mapping.mapper import (
    available_algorithms,
    compute_initial_mapping,
    vertex_mapping_from_blocks,
)
from repro.mapping.objective import coco_from_distances, network_cost_matrix
from repro.partitioning.kway import partition_kway


@pytest.fixture(scope="module")
def setup():
    ga = gen.barabasi_albert(600, 3, seed=5)
    gp = gen.grid(4, 4)
    part = partition_kway(ga, gp.n, seed=5)
    gc = build_communication_graph(part)
    return ga, gp, part, gc


class TestIdentity:
    def test_maps_block_to_same_pe(self, setup):
        ga, gp, part, _ = setup
        mu = identity_mapping(part, gp)
        assert np.array_equal(mu, part.assignment)

    def test_size_mismatch(self, setup):
        ga, gp, part, _ = setup
        with pytest.raises(MappingError):
            identity_mapping(part, gen.grid(2, 2))


class TestGreedy:
    def test_all_c_bijective(self, setup):
        _, gp, _, gc = setup
        nu = greedy_all_c(gc, gp)
        assert sorted(nu.tolist()) == list(range(gp.n))

    def test_min_bijective(self, setup):
        _, gp, _, gc = setup
        nu = greedy_min(gc, gp)
        assert sorted(nu.tolist()) == list(range(gp.n))

    def test_beats_random_mapping(self, setup):
        ga, gp, part, gc = setup
        dist = network_cost_matrix(gp)
        rng = np.random.default_rng(0)
        random_costs = []
        for _ in range(5):
            nu = rng.permutation(gp.n)
            random_costs.append(
                coco_from_distances(ga, nu[part.assignment], dist)
            )
        for algo in (greedy_all_c, greedy_min):
            nu = algo(gc, gp, dist)
            cost = coco_from_distances(ga, nu[part.assignment], dist)
            assert cost < np.mean(random_costs)

    def test_too_many_blocks(self, setup):
        _, _, _, gc = setup
        with pytest.raises(MappingError):
            greedy_all_c(gc, gen.grid(2, 2))


class TestDrb:
    def test_bijective(self, setup):
        _, gp, _, gc = setup
        nu = drb_mapping(gc, gp, seed=1)
        assert sorted(nu.tolist()) == list(range(gp.n))

    def test_deterministic(self, setup):
        _, gp, _, gc = setup
        assert np.array_equal(drb_mapping(gc, gp, seed=2), drb_mapping(gc, gp, seed=2))

    def test_beats_random(self, setup):
        ga, gp, part, gc = setup
        dist = network_cost_matrix(gp)
        rng = np.random.default_rng(1)
        random_cost = np.mean(
            [
                coco_from_distances(ga, rng.permutation(gp.n)[part.assignment], dist)
                for _ in range(5)
            ]
        )
        nu = drb_mapping(gc, gp, seed=3)
        assert coco_from_distances(ga, nu[part.assignment], dist) < random_cost


class TestMapperDriver:
    def test_registry_has_four_cases(self):
        assert set(available_algorithms()) == {"c1", "c2", "c3", "c4"}

    @pytest.mark.parametrize("case", ["c1", "c2", "c3", "c4"])
    def test_each_case_runs(self, setup, case):
        ga, gp, part, _ = setup
        mu, secs = compute_initial_mapping(case, part, gp, seed=4)
        assert mu.shape == (ga.n,)
        assert secs >= 0
        assert mu.min() >= 0 and mu.max() < gp.n

    def test_unknown_case(self, setup):
        ga, gp, part, _ = setup
        with pytest.raises(MappingError):
            compute_initial_mapping("c9", part, gp)

    def test_vertex_expansion(self, setup):
        ga, gp, part, _ = setup
        nu = np.arange(gp.n, dtype=np.int64)[::-1].copy()
        mu = vertex_mapping_from_blocks(part, nu)
        assert np.array_equal(mu, nu[part.assignment])

    def test_expansion_shape_check(self, setup):
        _, _, part, _ = setup
        with pytest.raises(MappingError):
            vertex_mapping_from_blocks(part, np.asarray([0, 1]))

    def test_k_mismatch(self, setup):
        ga, gp, part, _ = setup
        small = gen.grid(2, 2)
        with pytest.raises(MappingError):
            compute_initial_mapping("c2", part, small)
