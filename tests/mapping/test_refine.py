"""Tests for NCM-based pairwise-exchange refinement."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.graphs import generators as gen
from repro.mapping.commgraph import build_communication_graph
from repro.mapping.objective import coco_from_distances, network_cost_matrix
from repro.mapping.refine import ncm_swap_refine, swap_gain
from repro.partitioning.kway import partition_kway


@pytest.fixture(scope="module")
def setup():
    ga = gen.barabasi_albert(500, 3, seed=8)
    gp = gen.grid(4, 4)
    part = partition_kway(ga, gp.n, seed=8)
    gc = build_communication_graph(part)
    dist = network_cost_matrix(gp)
    return ga, gp, part, gc, dist


def _coco_of_nu(ga, part, dist, nu):
    return coco_from_distances(ga, nu[part.assignment], dist)


class TestSwapGain:
    def test_gain_matches_recomputation(self, setup):
        ga, gp, part, gc, dist = setup
        rng = np.random.default_rng(0)
        nu = rng.permutation(gp.n)
        before = _coco_of_nu(ga, part, dist, nu)
        for a, b in [(0, 5), (3, 12), (7, 8)]:
            g = swap_gain(gc, dist, nu, a, b)
            swapped = nu.copy()
            swapped[a], swapped[b] = swapped[b], swapped[a]
            after = _coco_of_nu(ga, part, dist, swapped)
            assert np.isclose(before - after, g), (a, b)

    def test_same_pe_zero(self, setup):
        _, _, _, gc, dist = setup
        nu = np.arange(gc.n)
        nu[1] = nu[0]  # artificial degenerate case
        assert swap_gain(gc, dist, nu, 0, 1) == 0.0


class TestRefine:
    def test_never_worse(self, setup):
        ga, gp, part, gc, dist = setup
        rng = np.random.default_rng(1)
        nu = rng.permutation(gp.n)
        before = _coco_of_nu(ga, part, dist, nu)
        out = ncm_swap_refine(gc, gp, nu, dist=dist)
        after = _coco_of_nu(ga, part, dist, out)
        assert after <= before

    def test_improves_random_start(self, setup):
        ga, gp, part, gc, dist = setup
        rng = np.random.default_rng(2)
        nu = rng.permutation(gp.n)
        out = ncm_swap_refine(gc, gp, nu, dist=dist)
        assert _coco_of_nu(ga, part, dist, out) < _coco_of_nu(ga, part, dist, nu)

    def test_stays_bijective(self, setup):
        _, gp, _, gc, dist = setup
        rng = np.random.default_rng(3)
        nu = rng.permutation(gp.n)
        out = ncm_swap_refine(gc, gp, nu, dist=dist)
        assert sorted(out.tolist()) == list(range(gp.n))

    def test_input_not_mutated(self, setup):
        _, gp, _, gc, dist = setup
        nu = np.arange(gp.n)
        snapshot = nu.copy()
        ncm_swap_refine(gc, gp, nu, dist=dist)
        assert np.array_equal(nu, snapshot)

    def test_radius_all_pairs(self, setup):
        ga, gp, part, gc, dist = setup
        rng = np.random.default_rng(4)
        nu = rng.permutation(gp.n)
        local = ncm_swap_refine(gc, gp, nu, dist=dist, radius=1)
        global_ = ncm_swap_refine(gc, gp, nu, dist=dist, radius=99)
        assert _coco_of_nu(ga, part, dist, global_) <= _coco_of_nu(
            ga, part, dist, local
        ) * 1.05

    def test_shape_validation(self, setup):
        _, gp, _, gc, dist = setup
        with pytest.raises(MappingError):
            ncm_swap_refine(gc, gp, np.arange(3), dist=dist)

    def test_works_on_non_partial_cube(self):
        """NCM refinement needs no partial-cube property (e.g. odd torus)."""
        ga = gen.barabasi_albert(300, 3, seed=5)
        gp = gen.torus(3, 5)  # NOT a partial cube
        part = partition_kway(ga, gp.n, seed=5)
        gc = build_communication_graph(part)
        dist = network_cost_matrix(gp)
        rng = np.random.default_rng(6)
        nu = rng.permutation(gp.n)
        out = ncm_swap_refine(gc, gp, nu, dist=dist)
        assert coco_from_distances(ga, out[part.assignment], dist) <= (
            coco_from_distances(ga, nu[part.assignment], dist)
        )
