"""Tests for the consolidated mapping quality report."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.mapping.objective import coco
from repro.mapping.report import MappingQualityReport, compare_reports, quality_report


@pytest.fixture
def setup():
    ga = gen.barabasi_albert(200, 3, seed=9)
    gp = gen.grid(4, 4)
    rng = np.random.default_rng(10)
    mu = rng.integers(0, gp.n, ga.n)
    return ga, gp, mu


class TestQualityReport:
    def test_coco_matches_reference(self, setup):
        ga, gp, mu = setup
        rep = quality_report(ga, gp, mu)
        assert np.isclose(rep.coco, coco(ga, gp, mu))

    def test_avg_dilation_consistent(self, setup):
        ga, gp, mu = setup
        rep = quality_report(ga, gp, mu)
        total_w = sum(w for _, _, w in ga.edges())
        assert np.isclose(rep.avg_dilation, rep.coco / total_w)

    def test_used_pes(self, setup):
        ga, gp, _ = setup
        rep = quality_report(ga, gp, np.zeros(ga.n, dtype=np.int64))
        assert rep.n_used_pes == 1
        assert rep.coco == 0.0
        assert rep.max_dilation == 0

    def test_skip_congestion(self, setup):
        ga, gp, mu = setup
        rep = quality_report(ga, gp, mu, with_congestion=False)
        assert np.isnan(rep.congestion)

    def test_hand_example(self):
        ga = from_edges(2, [(0, 1, 3.0)])
        gp = gen.path(4)
        rep = quality_report(ga, gp, np.asarray([0, 3]))
        assert rep.coco == 9.0
        assert rep.max_dilation == 3
        assert rep.cut == 3.0
        assert rep.congestion == 3.0  # the single flow loads each hop with 3


class TestCompareReports:
    def test_relative_changes(self):
        a = MappingQualityReport(100, 10, 2.0, 4, 8.0, 16)
        b = MappingQualityReport(80, 12, 1.6, 4, 8.0, 16)
        delta = compare_reports(a, b)
        assert np.isclose(delta["coco"], -0.2)
        assert np.isclose(delta["cut"], 0.2)
        assert delta["congestion"] == 0.0

    def test_zero_baseline(self):
        a = MappingQualityReport(0, 0, 0.0, 0, 0.0, 1)
        b = MappingQualityReport(5, 5, 1.0, 1, 1.0, 2)
        delta = compare_reports(a, b)
        assert delta["coco"] == 0.0  # guarded division
