"""JSON-lines event logger: envelope, binding, process fields."""

import io
import json

from repro.obs.log import EventLogger, get_logger, set_process_fields


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEventLogger:
    def test_one_json_object_per_line_with_envelope(self):
        stream = io.StringIO()
        log = EventLogger("serve.pool", stream=stream)
        log.info("worker_spawned", worker="w0", worker_generation=0)
        log.warn("worker_crashed", worker="w0")
        first, second = _lines(stream)
        assert first["component"] == "serve.pool"
        assert first["event"] == "worker_spawned"
        assert first["level"] == "info"
        assert first["worker_generation"] == 0
        assert isinstance(first["ts"], float)
        assert second["level"] == "warn"

    def test_bind_stamps_fields_on_every_event(self):
        stream = io.StringIO()
        log = EventLogger("serve.pool", stream=stream).bind(pool="map")
        log.info("worker_spawned")
        (got,) = _lines(stream)
        assert got["pool"] == "map"

    def test_call_fields_override_bound_fields(self):
        stream = io.StringIO()
        log = EventLogger("c", stream=stream).bind(shard="a")
        log.info("x", shard="b")
        (got,) = _lines(stream)
        assert got["shard"] == "b"

    def test_process_fields_apply_and_unset(self):
        stream = io.StringIO()
        log = EventLogger("c", stream=stream)
        set_process_fields(shard_id="shard1")
        try:
            log.info("routed")
            (got,) = _lines(stream)
            assert got["shard_id"] == "shard1"
        finally:
            set_process_fields(shard_id=None)
        log.info("after")
        assert "shard_id" not in _lines(stream)[-1]

    def test_disabled_logger_emits_nothing(self):
        stream = io.StringIO()
        EventLogger("c", stream=stream, enabled=False).info("x")
        assert stream.getvalue() == ""

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        stream.close()
        EventLogger("c", stream=stream).info("x")  # must not raise

    def test_non_json_values_are_stringified(self):
        stream = io.StringIO()
        EventLogger("c", stream=stream).info("x", obj={1, 2})
        (got,) = _lines(stream)
        assert isinstance(got["obj"], str)


class TestGetLogger:
    def test_memoized_per_component(self):
        assert get_logger("serve.test") is get_logger("serve.test")
        assert get_logger("serve.test") is not get_logger("serve.other")
