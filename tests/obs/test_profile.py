"""The cProfile hook: top-K frames, JSON-ready, exceptions propagate."""

import json

import pytest

from repro.obs.profile import profile_call


def _hot(n):
    total = 0
    for i in range(n):
        total += _inner(i)
    return total


def _inner(i):
    return i * i


class TestProfileCall:
    def test_returns_result_and_frames(self):
        result, frames = profile_call(_hot, 500, top=5)
        assert result == sum(i * i for i in range(500))
        assert 1 <= len(frames) <= 5
        names = " ".join(f["frame"] for f in frames)
        assert "_hot" in names
        for frame in frames:
            assert set(frame) == {"frame", "calls", "tottime", "cumtime"}
            assert frame["calls"] >= 1
        json.dumps(frames)

    def test_frames_sorted_by_cumulative_time(self):
        _result, frames = profile_call(_hot, 2000, top=10)
        cums = [f["cumtime"] for f in frames]
        assert cums == sorted(cums, reverse=True)

    def test_exceptions_propagate(self):
        def bad():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            profile_call(bad)

    def test_kwargs_forwarded(self):
        def f(a, b=0):
            return a + b

        result, _frames = profile_call(f, 1, b=2)
        assert result == 3
