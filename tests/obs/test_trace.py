"""Deterministic span trees: ids, buffers, merging, signatures."""

import json

import pytest

from repro.obs.trace import (
    Span,
    SpanContext,
    TraceBuffer,
    Tracer,
    build_tree,
    configure_tracer,
    derive_span_id,
    derive_trace_id,
    get_tracer,
    merge_debug_snapshots,
    tree_signature,
)


def _payload(seed=0):
    return {
        "topology": "grid4x4",
        "graph": {"kind": "generate", "instance": "tri", "seed": seed},
        "seed": seed,
    }


class TestDeterministicIds:
    def test_trace_id_is_a_pure_function_of_the_payload(self):
        assert derive_trace_id(_payload()) == derive_trace_id(_payload())
        assert derive_trace_id(_payload(0)) != derive_trace_id(_payload(1))
        # canonicalization: key order cannot matter
        assert derive_trace_id({"a": 1, "b": 2}) == derive_trace_id(
            {"b": 2, "a": 1}
        )

    def test_span_id_depends_on_position_only(self):
        a = derive_span_id("t", "p", "compute", 0)
        assert a == derive_span_id("t", "p", "compute", 0)
        assert a != derive_span_id("t", "p", "compute", 1)
        assert a != derive_span_id("t", "p", "other", 0)
        assert len(a) == 16 and int(a, 16) >= 0

    def test_same_request_same_tree_across_fresh_processes(self):
        # Two tracers with fresh buffers stand in for two server runs:
        # the replayed request must produce byte-identical signatures.
        def run_once():
            tracer = Tracer(process="serve", buffer=TraceBuffer())
            ctx = tracer.start_trace(_payload())
            with tracer.span("handle", ctx) as handle:
                with tracer.span("compute", handle.context) as compute:
                    child = tracer.span("stage:partition", compute.context)
                    child.finish(duration=0.123)
            return tracer.buffer.get(ctx.trace_id)

        first, second = run_once(), run_once()
        assert tree_signature(first) == tree_signature(second)


class TestSpanContext:
    def test_wire_round_trip(self):
        ctx = SpanContext("abc", "def", True)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "bad",
        [None, 17, "str", [], {}, {"span_id": "x"}, {"trace_id": ""},
         {"trace_id": 7}],
    )
    def test_malformed_wire_is_none_never_raises(self, bad):
        assert SpanContext.from_wire(bad) is None

    def test_unsampled_survives_the_wire(self):
        ctx = SpanContext.from_wire(
            {"trace_id": "t", "span_id": "", "sampled": False}
        )
        assert ctx is not None and not ctx.sampled


class TestSpanLifecycle:
    def test_context_manager_records_into_buffer(self):
        tracer = Tracer(process="p", buffer=TraceBuffer())
        ctx = tracer.start_trace(_payload())
        with tracer.span("handle", ctx, op="map") as span:
            span.set(cached=False)
        (got,) = tracer.buffer.get(ctx.trace_id)
        assert got["name"] == "handle"
        assert got["process"] == "p"
        assert got["status"] == "ok"
        assert got["attrs"] == {"op": "map", "cached": False}
        assert got["duration"] >= 0.0

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer(buffer=TraceBuffer())
        ctx = tracer.start_trace(_payload())
        with pytest.raises(RuntimeError):
            with tracer.span("handle", ctx):
                raise RuntimeError("boom")
        (got,) = tracer.buffer.get(ctx.trace_id)
        assert got["status"] == "error"
        assert got["attrs"]["error"] == "RuntimeError"

    def test_duration_override_for_premeasured_timings(self):
        tracer = Tracer(buffer=TraceBuffer())
        ctx = tracer.start_trace(_payload())
        span = tracer.span("stage:enhance", ctx)
        span.finish(duration=1.5)
        (got,) = tracer.buffer.get(ctx.trace_id)
        assert got["duration"] == 1.5

    def test_double_finish_records_once(self):
        tracer = Tracer(buffer=TraceBuffer())
        ctx = tracer.start_trace(_payload())
        span = tracer.span("x", ctx)
        span.finish()
        span.finish(status="error")
        (got,) = tracer.buffer.get(ctx.trace_id)
        assert got["status"] == "ok"
        assert len(tracer.buffer.get(ctx.trace_id)) == 1

    def test_span_dicts_are_json_serializable(self):
        tracer = Tracer(buffer=TraceBuffer())
        ctx = tracer.start_trace(_payload())
        with tracer.span("handle", ctx, n=4):
            pass
        json.dumps(tracer.buffer.get(ctx.trace_id))


class TestNullSpans:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(buffer=TraceBuffer(), enabled=False)
        ctx = tracer.start_trace(_payload())
        assert ctx.trace_id == ""
        with tracer.span("handle", ctx) as span:
            span.set(anything=1)
            with tracer.span("child", span.context) as child:
                child.finish(duration=1.0)
        assert len(tracer.buffer) == 0

    def test_unsampled_trace_records_nothing(self):
        tracer = Tracer(buffer=TraceBuffer())
        ctx = tracer.start_trace(_payload(), sampled=False)
        with tracer.span("handle", ctx) as span:
            with tracer.span("child", span.context):
                pass
        assert len(tracer.buffer) == 0

    def test_null_span_forwards_parent_context(self):
        tracer = Tracer(buffer=TraceBuffer(), enabled=False)
        parent = SpanContext("t", "s", True)
        span = tracer.span("x", parent)
        assert span.context is parent

    def test_missing_parent_is_a_null_span(self):
        tracer = Tracer(buffer=TraceBuffer())
        with tracer.span("x", None) as span:
            pass
        assert len(tracer.buffer) == 0
        assert span.context.trace_id == ""


class TestTraceBuffer:
    def test_ring_evicts_least_recently_touched(self):
        buf = TraceBuffer(max_traces=2)
        for tid in ("a", "b", "c"):
            buf.add({"trace_id": tid, "span_id": "s", "name": "x"})
        assert buf.get("a") == []
        assert buf.evicted_traces == 1
        assert [tid for tid, _ in buf.traces()] == ["c", "b"]

    def test_span_cap_counts_drops(self):
        buf = TraceBuffer(max_spans_per_trace=2)
        for i in range(4):
            buf.add({"trace_id": "t", "span_id": f"s{i}", "name": "x"})
        assert len(buf.get("t")) == 2
        assert buf.dropped_spans == 2
        assert buf.stats()["dropped_spans"] == 2

    def test_next_index_counts_same_named_siblings(self):
        buf = TraceBuffer()
        assert buf.next_index("t", "p", "compute") == 0
        assert buf.next_index("t", "p", "compute") == 1
        assert buf.next_index("t", "p", "other") == 0
        assert buf.next_index("t", "q", "compute") == 0

    def test_ingest_merges_foreign_spans(self):
        buf = TraceBuffer()
        buf.ingest(
            [{"trace_id": "t", "span_id": "a", "name": "pool"}, "junk", {}]
        )
        assert len(buf.get("t")) == 1


class TestTreesAndSignatures:
    def test_build_tree_nests_and_sorts_children(self):
        spans = [
            {"name": "b", "span_id": "2", "parent_id": "1"},
            {"name": "a", "span_id": "3", "parent_id": "1"},
            {"name": "root", "span_id": "1", "parent_id": ""},
        ]
        (root,) = build_tree(spans)
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["a", "b"]

    def test_orphans_surface_as_roots(self):
        spans = [{"name": "x", "span_id": "9", "parent_id": "missing"}]
        roots = build_tree(spans)
        assert len(roots) == 1 and roots[0]["name"] == "x"

    def test_signature_excludes_timing(self):
        a = [{"name": "x", "span_id": "1", "parent_id": "", "process": "p",
              "status": "ok", "duration": 0.5, "start": 1.0}]
        b = [{"name": "x", "span_id": "1", "parent_id": "", "process": "p",
              "status": "ok", "duration": 9.9, "start": 2.0}]
        assert tree_signature(a) == tree_signature(b)

    def test_signature_includes_structure(self):
        a = [{"name": "x", "span_id": "1", "parent_id": "", "process": "p"}]
        b = [{"name": "y", "span_id": "1", "parent_id": "", "process": "p"}]
        assert tree_signature(a) != tree_signature(b)


class TestSnapshotsAndMerge:
    def _spans(self, tracer, payload):
        ctx = tracer.start_trace(payload)
        with tracer.span("handle", ctx) as span:
            with tracer.span("compute", span.context):
                pass
        return ctx

    def test_debug_snapshot_shape(self):
        tracer = Tracer(process="serve", buffer=TraceBuffer())
        self._spans(tracer, _payload())
        snap = tracer.debug_snapshot(recent=5, slowest=2)
        assert snap["process"] == "serve"
        assert snap["buffer"]["traces"] == 1
        (entry,) = snap["recent"]
        assert entry["span_count"] == 2
        assert entry["tree"][0]["name"] == "handle"
        assert entry["duration"] >= 0.0
        assert len(snap["slowest"]) == 1

    def test_merge_unions_spans_across_processes(self):
        # The frontend half and the shard half of one trace live in
        # different buffers; the merge must stitch them into one tree.
        payload = _payload()
        front = Tracer(process="frontend", buffer=TraceBuffer())
        ctx = front.start_trace(payload)
        root = front.span("frontend", ctx)
        shard = Tracer(process="shard0", buffer=TraceBuffer())
        with shard.span("handle", root.context):
            pass
        root.finish()
        merged = merge_debug_snapshots(
            [front.debug_snapshot(), shard.debug_snapshot()]
        )
        assert merged["process"] == "aggregate"
        assert merged["buffer"]["sources"] == 2
        (entry,) = merged["recent"]
        assert entry["span_count"] == 2
        (tree_root,) = entry["tree"]
        assert tree_root["name"] == "frontend"
        assert tree_root["children"][0]["name"] == "handle"
        assert tree_root["children"][0]["process"] == "shard0"

    def test_merge_dedups_recent_and_slowest_overlap(self):
        tracer = Tracer(buffer=TraceBuffer())
        self._spans(tracer, _payload())
        merged = merge_debug_snapshots([tracer.debug_snapshot()])
        (entry,) = merged["recent"]
        assert entry["span_count"] == 2  # not doubled by the overlap


class TestProcessGlobalTracer:
    def test_configure_reconfigures_in_place(self):
        tracer = get_tracer()
        before = configure_tracer(process="test-proc", enabled=True)
        assert before is tracer
        assert get_tracer().process == "test-proc"
        configure_tracer(max_traces=7)
        assert get_tracer().buffer.max_traces == 7
        configure_tracer(process="repro", enabled=True, max_traces=256)
