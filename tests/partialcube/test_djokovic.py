"""Tests for partial-cube recognition and labeling (paper section 3)."""

import numpy as np
import pytest

from repro.errors import NotPartialCubeError
from repro.graphs import generators as gen
from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.builder import from_edges
from repro.partialcube.djokovic import (
    djokovic_classes,
    is_partial_cube,
    partial_cube_labeling,
)


class TestRecognitionPositive:
    @pytest.mark.parametrize(
        "maker,expected_dim",
        [
            (lambda: gen.path(5), 4),
            (lambda: gen.grid(3, 3), 4),
            (lambda: gen.grid(4, 4), 6),
            (lambda: gen.grid(2, 3, 4), 6),
            (lambda: gen.cycle(6), 3),
            (lambda: gen.cycle(8), 4),
            (lambda: gen.torus(4, 4), 4),
            (lambda: gen.torus(4, 6), 5),
            (lambda: gen.hypercube(3), 3),
            (lambda: gen.hypercube(5), 5),
            (lambda: gen.star(6), 6),
            (lambda: gen.complete_binary_tree(3), 14),
        ],
    )
    def test_dimension(self, maker, expected_dim):
        g = maker()
        lab = partial_cube_labeling(g)
        assert lab.dim == expected_dim

    def test_isometry_holds(self, small_grid):
        lab = partial_cube_labeling(small_grid)
        d = all_pairs_distances(small_grid)
        ham = np.bitwise_count(lab.labels[:, None] ^ lab.labels[None, :])
        assert np.array_equal(ham, d)

    def test_tree_every_edge_own_class(self):
        t = gen.random_tree(20, seed=1)
        edge_class, classes = djokovic_classes(t)
        assert len(classes) == t.m
        assert len(set(edge_class.tolist())) == t.m

    def test_hypercube_labels_unique(self):
        lab = partial_cube_labeling(gen.hypercube(4))
        assert len(set(lab.labels.tolist())) == 16

    def test_cut_edges_partition_edge_set(self, small_grid):
        lab = partial_cube_labeling(small_grid)
        total = sum(ce.shape[0] for ce in lab.cut_edges)
        assert total == small_grid.m

    def test_side_membership(self, small_grid):
        lab = partial_cube_labeling(small_grid)
        for j in range(lab.dim):
            side = lab.side(j)
            assert 0 < side.sum() < small_grid.n

    def test_bit_matrix(self, small_torus):
        lab = partial_cube_labeling(small_torus)
        mat = lab.as_bit_matrix()
        assert mat.shape == (small_torus.n, lab.dim)
        packed = (mat.astype(np.int64) << np.arange(lab.dim)).sum(axis=1)
        assert np.array_equal(packed, lab.labels)


class TestRecognitionNegative:
    def test_odd_cycle(self):
        with pytest.raises(NotPartialCubeError) as exc:
            partial_cube_labeling(gen.cycle(5))
        assert exc.value.reason == "not-bipartite"

    def test_odd_torus(self):
        assert not is_partial_cube(gen.torus(3, 4))

    def test_k23_not_partial_cube(self):
        # K_{2,3} is bipartite but not a partial cube (classes overlap).
        g = from_edges(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
        with pytest.raises(NotPartialCubeError) as exc:
            partial_cube_labeling(g)
        assert exc.value.reason in ("overlapping-classes", "not-isometric")

    def test_disconnected(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotPartialCubeError) as exc:
            partial_cube_labeling(g)
        assert exc.value.reason == "disconnected"

    def test_empty(self):
        with pytest.raises(NotPartialCubeError):
            partial_cube_labeling(from_edges(0, []))

    def test_dimension_beyond_63_goes_wide(self):
        # A 70-vertex star has dimension 70 > 63 packed bits; it used to
        # raise "dimension-too-large", now it labels into the wide
        # (n, 2)-word representation.
        g = gen.star(70)
        pc = partial_cube_labeling(g)
        assert pc.dim == g.m > 63
        assert pc.labels.ndim == 2 and pc.labels.shape == (g.n, 2)
        assert pc.labels.dtype == np.uint64

    def test_is_partial_cube_wrapper(self):
        assert is_partial_cube(gen.grid(3, 3))
        assert not is_partial_cube(gen.cycle(7))


class TestPaperTopologies:
    """Convex-cut counts for the evaluation topologies (§7.2 bullet 2)."""

    @pytest.mark.parametrize(
        "name,maker,dim",
        [
            ("grid16x16", lambda: gen.grid(16, 16), 30),
            ("hq8", lambda: gen.hypercube(8), 8),
            # The paper reports 32/24 convex cuts for the tori; the true
            # isometric dimension is half per torus dimension (antipodal
            # meridians share a Djokovic class).  See DESIGN.md.
            ("torus16x16", lambda: gen.torus(16, 16), 16),
        ],
    )
    def test_dims(self, name, maker, dim):
        g = maker()
        assert partial_cube_labeling(g).dim == dim


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestVectorizedMatchesLoop:
    # method= is a deprecation shim now (the strategy choice moved into
    # the kernel backend); these tests keep pinning it to prove the
    # explicit strategies stay equivalent.

    """The batched side-test implementation must reproduce the sequential
    per-class loop exactly on partial cubes (trees, grids, hypercubes)."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gen.random_tree(40, seed=2),
            lambda: gen.random_tree(120, seed=9),
            lambda: gen.path(17),
            lambda: gen.star(12),
            lambda: gen.complete_binary_tree(4),
            lambda: gen.grid(5, 7),
            lambda: gen.grid(3, 3, 3),
            lambda: gen.hypercube(4),
            lambda: gen.hypercube(6),
            lambda: gen.cycle(10),
            lambda: gen.torus(4, 6),
        ],
    )
    def test_identical_classes(self, maker):
        g = maker()
        dist = all_pairs_distances(g)
        ec_loop, cls_loop = djokovic_classes(g, dist, method="loop")
        ec_vec, cls_vec = djokovic_classes(g, dist, method="vectorized")
        assert np.array_equal(ec_loop, ec_vec)
        assert cls_loop == cls_vec

    def test_default_auto_matches_both(self, small_grid):
        ec_default, cls_default = djokovic_classes(small_grid)
        ec_vec, cls_vec = djokovic_classes(small_grid, method="vectorized")
        assert np.array_equal(ec_default, ec_vec)
        assert cls_default == cls_vec

    def test_auto_falls_back_to_batch_on_many_classes(self):
        # a 100-edge tree has 100 classes > the 64-class loop cap
        t = gen.random_tree(101, seed=4)
        ec_auto, cls_auto = djokovic_classes(t, method="auto")
        ec_loop, cls_loop = djokovic_classes(t, method="loop")
        assert np.array_equal(ec_auto, ec_loop)
        assert cls_auto == cls_loop

    def test_rejects_unknown_method(self, small_grid):
        with pytest.raises(ValueError):
            djokovic_classes(small_grid, method="gpu")

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_method_kwarg_warns_deprecation(self, small_grid):
        with pytest.warns(DeprecationWarning, match="kernel backend"):
            djokovic_classes(small_grid, method="auto")

    def test_vectorized_detects_overlap(self):
        g = from_edges(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
        with pytest.raises(NotPartialCubeError) as exc:
            djokovic_classes(g, method="vectorized")
        assert exc.value.reason == "overlapping-classes"
