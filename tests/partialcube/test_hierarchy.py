"""Tests for permutation hierarchies (paper section 2, Figure 2)."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partialcube.hierarchy import (
    hierarchy_from_permutation,
    identity_permutation,
    opposite_permutation,
)


@pytest.fixture
def hq4_labels():
    g = gen.hypercube(4)
    lab = partial_cube_labeling(g)
    return lab.labels, lab.dim


class TestStructure:
    def test_level_counts_figure2(self, hq4_labels):
        """Figure 2: the 4-D hypercube hierarchy has 1,2,4,8,16 parts."""
        labels, dim = hq4_labels
        h = hierarchy_from_permutation(labels, dim, identity_permutation(dim))
        assert [h.n_parts(i) for i in range(dim + 1)] == [1, 2, 4, 8, 16]

    def test_opposite_hierarchy_also_binary(self, hq4_labels):
        labels, dim = hq4_labels
        h = hierarchy_from_permutation(labels, dim, opposite_permutation(dim))
        assert [h.n_parts(i) for i in range(dim + 1)] == [1, 2, 4, 8, 16]

    def test_hierarchies_differ(self, hq4_labels):
        labels, dim = hq4_labels
        h_id = hierarchy_from_permutation(labels, dim, identity_permutation(dim))
        h_op = hierarchy_from_permutation(labels, dim, opposite_permutation(dim))
        assert not np.array_equal(h_id.group_ids[1], h_op.group_ids[1])

    def test_refinement_chain(self, hq4_labels):
        """Each level refines the previous (parts nest)."""
        labels, dim = hq4_labels
        h = hierarchy_from_permutation(labels, dim, seed=3)
        for i in range(1, dim + 1):
            coarse = h.group_ids[i - 1]
            fine = h.group_ids[i]
            # same fine id -> same coarse id
            for gid in np.unique(fine):
                members = np.nonzero(fine == gid)[0]
                assert len(np.unique(coarse[members])) == 1

    def test_partition_returns_all_vertices(self, hq4_labels):
        labels, dim = hq4_labels
        h = hierarchy_from_permutation(labels, dim, seed=1)
        parts = h.partition(2)
        assert sorted(np.concatenate(parts).tolist()) == list(range(16))

    def test_parent_of_part(self, hq4_labels):
        labels, dim = hq4_labels
        h = hierarchy_from_permutation(labels, dim, identity_permutation(dim))
        assert h.parent_of_part(2, 0b10) == 0b1
        with pytest.raises(IndexError):
            h.parent_of_part(0, 0)

    def test_level_out_of_range(self, hq4_labels):
        labels, dim = hq4_labels
        h = hierarchy_from_permutation(labels, dim, seed=1)
        with pytest.raises(IndexError):
            h.partition(dim + 1)

    def test_bad_perm_rejected(self, hq4_labels):
        labels, dim = hq4_labels
        with pytest.raises(ValueError):
            hierarchy_from_permutation(labels, dim, np.asarray([0, 0, 1, 2]))

    def test_grid_hierarchy_leaves_singletons(self):
        g = gen.grid(4, 4)
        lab = partial_cube_labeling(g)
        h = hierarchy_from_permutation(lab.labels, lab.dim, seed=5)
        assert h.n_parts(lab.dim) == g.n  # labels unique on Vp
