"""The historical 63-class packed-label cap is gone: wide labels.

This file used to pin early, explicit errors at the 64-PE fat-tree /
64-vertex tree limit; those errors no longer exist.  It now pins the
opposite contract: everything that used to die at the cap labels fine,
switching to the multi-word representation exactly past 63 classes.
"""

import numpy as np

import repro.partialcube.djokovic as djk
from repro.graphs import generators as gen
from repro.partialcube.verify import verify_labeling
from repro.utils.bitops import MAX_LABEL_BITS


class TestFatTreeCapLifted:
    def test_127_switch_fat_tree_builds_and_labels(self):
        # 2-ary height 6 = 127 switches = 126 Djokovic classes > 63:
        # used to raise ConfigurationError at construction.
        t = gen.fat_tree(2, 6)
        assert t.n == 127 and t.m == 126
        pc = djk.partial_cube_labeling(t)
        assert pc.dim == 126
        assert pc.labels.shape == (127, 2) and pc.labels.dtype == np.uint64
        assert verify_labeling(t, pc.labels)

    def test_check_labelable_flag_is_accepted_and_inert(self):
        # The historical escape hatch still parses; both spellings build
        # the same graph.
        a = gen.fat_tree(2, 6, check_labelable=False)
        b = gen.fat_tree(2, 6, check_labelable=True)
        assert a.n == b.n == 127 and a.m == b.m == 126

    def test_narrow_fat_tree_still_narrow(self):
        # 2-ary height 5 = 63 switches = 62 classes <= 63: the packed
        # int64 fast path, unchanged.
        t = gen.fat_tree(2, 5)
        pc = djk.partial_cube_labeling(t)
        assert pc.dim == t.m == 62
        assert pc.labels.ndim == 1 and pc.labels.dtype == np.int64


class TestPathsAcrossTheBoundary:
    def test_path_at_cap_narrow(self):
        p = gen.path(MAX_LABEL_BITS + 1)  # 64 vertices, 63 edges
        pc = djk.partial_cube_labeling(p)
        assert pc.dim == MAX_LABEL_BITS
        assert pc.labels.ndim == 1

    def test_path_just_beyond_cap_goes_wide(self):
        p = gen.path(MAX_LABEL_BITS + 2)  # 65 vertices, 64 edges
        pc = djk.partial_cube_labeling(p)
        assert pc.dim == MAX_LABEL_BITS + 1
        assert pc.labels.ndim == 2 and pc.labels.shape[1] == 1
        assert verify_labeling(p, pc.labels)

    def test_raw_classes_agree_with_wide_labels(self):
        t = gen.fat_tree(2, 6)
        edge_class, classes = djk.djokovic_classes(t)
        assert len(classes) == t.m  # every tree edge its own class
        pc = djk.partial_cube_labeling(t)
        # bit j of the labels must separate exactly class j's cut
        bits = pc.as_bit_matrix()
        us, vs, _ = t.edge_arrays()
        for e in range(t.m):
            j = int(edge_class[e])
            assert bits[us[e], j] != bits[vs[e], j]
