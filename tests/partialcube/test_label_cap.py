"""Early, explicit errors at the 63-class packed-label cap."""

import pytest

import repro.partialcube.djokovic as djk
from repro.errors import ConfigurationError, NotPartialCubeError, ReproError
from repro.graphs import generators as gen
from repro.utils.bitops import MAX_LABEL_BITS


class TestFatTreeCap:
    def test_oversized_fat_tree_raises_at_construction(self):
        # 2-ary height 6 = 127 switches = 126 Djokovic classes > 63
        with pytest.raises(ConfigurationError) as exc:
            gen.fat_tree(2, 6)
        assert "packed-label limit" in str(exc.value)
        assert isinstance(exc.value, ReproError)

    def test_escape_hatch_builds_the_graph(self):
        t = gen.fat_tree(2, 6, check_labelable=False)
        assert t.n == 127 and t.m == 126

    def test_largest_labelable_fat_tree_still_works(self):
        # 2-ary height 5 = 63 switches = 62 classes <= 63: fine
        t = gen.fat_tree(2, 5)
        pc = djk.partial_cube_labeling(t)
        assert pc.dim == t.m == 62


class TestEarlyLabelingCap:
    def test_tree_beyond_cap_fails_before_distance_computation(self, monkeypatch):
        t = gen.fat_tree(2, 6, check_labelable=False)

        def bomb(_g):  # pragma: no cover - must never run
            raise AssertionError("all-pairs distances computed despite early cap")

        monkeypatch.setattr(djk, "all_pairs_distances", bomb)
        with pytest.raises(NotPartialCubeError) as exc:
            djk.partial_cube_labeling(t)
        assert exc.value.reason == "dimension-too-large"
        assert str(MAX_LABEL_BITS) in str(exc.value)

    def test_path_just_beyond_cap(self):
        p = gen.path(MAX_LABEL_BITS + 2)  # 65 vertices, 64 edges
        with pytest.raises(NotPartialCubeError) as exc:
            djk.partial_cube_labeling(p)
        assert exc.value.reason == "dimension-too-large"

    def test_path_at_cap_ok(self):
        p = gen.path(MAX_LABEL_BITS + 1)  # 64 vertices, 63 edges
        pc = djk.partial_cube_labeling(p)
        assert pc.dim == MAX_LABEL_BITS

    def test_raw_classes_still_available_beyond_cap(self):
        t = gen.fat_tree(2, 6, check_labelable=False)
        edge_class, classes = djk.djokovic_classes(t)
        assert len(classes) == t.m  # every tree edge its own class
