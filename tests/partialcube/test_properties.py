"""Property-based tests: partial-cube labelings on random topologies."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.algorithms import all_pairs_distances
from repro.partialcube.djokovic import partial_cube_labeling


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=6),
    cols=st.integers(min_value=2, max_value=6),
)
def test_grid_labeling_isometric(rows, cols):
    g = gen.grid(rows, cols)
    lab = partial_cube_labeling(g)
    assert lab.dim == (rows - 1) + (cols - 1)
    d = all_pairs_distances(g)
    ham = np.bitwise_count(lab.labels[:, None] ^ lab.labels[None, :])
    assert np.array_equal(ham, d)


@settings(max_examples=15, deadline=None)
@given(
    rows=st.sampled_from([4, 6, 8]),
    cols=st.sampled_from([4, 6, 8]),
)
def test_even_torus_labeling_isometric(rows, cols):
    g = gen.torus(rows, cols)
    lab = partial_cube_labeling(g)
    assert lab.dim == rows // 2 + cols // 2
    d = all_pairs_distances(g)
    ham = np.bitwise_count(lab.labels[:, None] ^ lab.labels[None, :])
    assert np.array_equal(ham, d)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=40), seed=st.integers(0, 2**31 - 1))
def test_random_tree_labeling(n, seed):
    t = gen.random_tree(n, seed=seed)
    lab = partial_cube_labeling(t)
    assert lab.dim == n - 1
    d = all_pairs_distances(t)
    ham = np.bitwise_count(lab.labels[:, None] ^ lab.labels[None, :])
    assert np.array_equal(ham, d)


@settings(max_examples=10, deadline=None)
@given(dim=st.integers(min_value=1, max_value=7))
def test_hypercube_dimension_recovered(dim):
    g = gen.hypercube(dim)
    lab = partial_cube_labeling(g)
    assert lab.dim == dim
    assert len(set(lab.labels.tolist())) == g.n


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(min_value=10, max_value=60),
    p=st.floats(min_value=0.1, max_value=0.4),
)
def test_random_graphs_never_crash_recognition(seed, n, p):
    """Recognition must return a clean verdict on arbitrary input."""
    from repro.graphs.algorithms import is_connected
    from repro.partialcube.djokovic import is_partial_cube

    g = gen.erdos_renyi(n, p, seed=seed)
    verdict = is_partial_cube(g)  # must not raise anything non-ReproError
    if verdict:
        # positives must verify exhaustively
        lab = partial_cube_labeling(g)
        assert is_connected(g)
        d = all_pairs_distances(g)
        ham = np.bitwise_count(lab.labels[:, None] ^ lab.labels[None, :])
        assert np.array_equal(ham, d)
