"""Tests for labeling verification."""

import numpy as np

from repro.graphs import generators as gen
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partialcube.verify import labeling_distance_error, verify_labeling


def test_valid_labeling_verifies(small_grid):
    lab = partial_cube_labeling(small_grid)
    assert verify_labeling(small_grid, lab.labels)
    assert labeling_distance_error(small_grid, lab.labels) == 0


def test_corrupted_labeling_detected(small_grid):
    lab = partial_cube_labeling(small_grid)
    bad = lab.labels.copy()
    bad[0] ^= 1
    assert not verify_labeling(small_grid, bad)
    assert labeling_distance_error(small_grid, bad) > 0


def test_hypercube_identity_labels():
    g = gen.hypercube(4)
    # Vertex ids ARE valid labels for the hypercube by construction.
    assert verify_labeling(g, np.arange(16, dtype=np.int64))


def test_wrong_shape_raises(small_grid):
    import pytest

    with pytest.raises(ValueError):
        verify_labeling(small_grid, np.zeros(3, dtype=np.int64))
