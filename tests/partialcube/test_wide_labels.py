"""Wide-vs-reference equivalence on >= 64-class partial cubes.

The wide labeling must agree, class by class, with the raw Djokovic
structure (the representation-independent ground truth) and pass the
exhaustive Hamming-equals-distance check on random trees with n >= 100
and on the 255-switch ``fattree2x7``.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.builder import from_edges
from repro.partialcube.djokovic import djokovic_classes, partial_cube_labeling
from repro.partialcube.hierarchy import hierarchy_from_permutation
from repro.partialcube.verify import labeling_distance_error, verify_labeling
from repro.utils.bitops import pairwise_hamming, words_for_bits


def _random_tree(n, seed):
    """Uniform-ish random tree: attach vertex i to a random earlier one."""
    rng = np.random.default_rng(seed)
    parents = [int(rng.integers(0, i)) for i in range(1, n)]
    return from_edges(n, [(p, i + 1) for i, p in enumerate(parents)])


class TestRandomTrees:
    @pytest.mark.parametrize("n,seed", [(100, 0), (150, 1), (230, 2)])
    def test_labeling_is_isometric(self, n, seed):
        t = _random_tree(n, seed)
        pc = partial_cube_labeling(t)
        assert pc.dim == n - 1
        assert pc.labels.shape == (n, words_for_bits(n - 1))
        assert labeling_distance_error(t, pc.labels) == 0

    @pytest.mark.parametrize("n,seed", [(110, 3), (170, 4)])
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")  # pinned method=
    def test_labels_match_reference_classes(self, n, seed):
        t = _random_tree(n, seed)
        dist = all_pairs_distances(t)
        edge_class, classes = djokovic_classes(t, dist, method="loop")
        pc = partial_cube_labeling(t)
        # Reference side test per class, straight from the definition.
        bits = pc.as_bit_matrix()
        for j, (x, y) in enumerate(classes):
            on_y = dist[y] < dist[x]
            assert np.array_equal(bits[:, j].astype(bool), on_y)

    def test_hamming_equals_distance_pairwise(self):
        t = _random_tree(120, 9)
        pc = partial_cube_labeling(t)
        assert np.array_equal(pairwise_hamming(pc.labels), all_pairs_distances(t))


class TestFatTree2x7:
    def test_end_to_end_labeling(self):
        t = gen.fat_tree(2, 7)
        assert t.n == 255
        pc = partial_cube_labeling(t)
        assert pc.dim == 254 and pc.labels.shape == (255, 4)
        assert verify_labeling(t, pc.labels)
        # every class's cut is exactly one tree edge
        assert all(c.shape == (1, 2) for c in pc.cut_edges)

    def test_wide_hierarchy_partitions(self):
        t = gen.fat_tree(2, 6)
        pc = partial_cube_labeling(t)
        h = hierarchy_from_permutation(pc.labels, pc.dim, seed=0)
        assert h.dim == 126
        # partitions refine monotonically and end at singletons
        sizes = [h.n_parts(i) for i in range(h.dim + 1)]
        assert sizes[0] == 1 and sizes[-1] == t.n
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_narrow_boundary_unchanged(self):
        # 63-class path: still the packed int64 fast path.
        p = gen.path(64)
        pc = partial_cube_labeling(p)
        assert pc.labels.ndim == 1 and pc.labels.dtype == np.int64
        assert verify_labeling(p, pc.labels)
