"""Tests for graph contraction and the coarsening chain."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.partitioning.coarsen import coarsen_once, coarsen_to_size, contract_graph


class TestContractGraph:
    def test_weights_aggregate(self):
        g = from_edges(4, [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)])
        coarse = contract_graph(g, np.asarray([0, 0, 1, 1]), 2)
        assert coarse.n == 2
        assert coarse.m == 1
        assert coarse.edge_weight(0, 1) == 5.0  # 2.0 + 3.0 across the cut

    def test_vertex_weights_sum(self):
        g = from_edges(3, [(0, 1), (1, 2)], vertex_weights=[1.0, 2.0, 4.0])
        coarse = contract_graph(g, np.asarray([0, 0, 1]), 2)
        assert coarse.vertex_weights.tolist() == [3.0, 4.0]

    def test_internal_edges_vanish(self, triangle):
        coarse = contract_graph(triangle, np.asarray([0, 0, 0]), 1)
        assert coarse.n == 1 and coarse.m == 0

    def test_shape_mismatch(self, triangle):
        with pytest.raises(ValueError):
            contract_graph(triangle, np.asarray([0, 1]), 2)

    def test_total_cross_weight_preserved(self, ba_graph):
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 10, ba_graph.n)
        coarse = contract_graph(ba_graph, groups, 10)
        us, vs, ws = ba_graph.edge_arrays()
        cross = ws[groups[us] != groups[vs]].sum()
        assert np.isclose(coarse.total_edge_weight(), cross)


class TestCoarsenChain:
    def test_coarsen_once_shrinks(self, ba_graph):
        level = coarsen_once(ba_graph, seed=1)
        assert level.coarse.n < ba_graph.n
        assert level.coarse_of.shape == (ba_graph.n,)

    def test_coarsen_to_size(self, ba_graph):
        levels = coarsen_to_size(ba_graph, 50, seed=2)
        assert levels[-1].coarse.n <= max(50, int(0.95 * levels[-1].fine.n))
        # chain is consistent
        for a, b in zip(levels, levels[1:]):
            assert a.coarse == b.fine

    def test_preserves_total_vertex_weight(self, ba_graph):
        levels = coarsen_to_size(ba_graph, 50, seed=3)
        for level in levels:
            assert np.isclose(
                level.coarse.vertex_weights.sum(), ba_graph.vertex_weights.sum()
            )

    def test_stalls_gracefully_on_star(self):
        g = gen.star(30)
        levels = coarsen_to_size(g, 2, seed=4)
        # star resists matching: must terminate, not loop forever
        assert isinstance(levels, list)
