"""Tests for greedy initial bisection and FM refinement."""

import numpy as np

from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.partitioning.fm import fm_refine
from repro.partitioning.initial import grow_bisection, random_bisection
from repro.partitioning.metrics import edge_cut


class TestGrowBisection:
    def test_respects_target_roughly(self, ba_graph):
        total = ba_graph.vertex_weights.sum()
        assign = grow_bisection(ba_graph, total / 2, seed=1)
        w0 = ba_graph.vertex_weights[assign == 0].sum()
        assert 0.3 * total < w0 < 0.7 * total

    def test_two_sides_nonempty(self, ba_graph):
        assign = grow_bisection(ba_graph, ba_graph.vertex_weights.sum() / 2, seed=2)
        assert (assign == 0).any() and (assign == 1).any()

    def test_empty_graph(self):
        assert grow_bisection(from_edges(0, []), 1.0).size == 0

    def test_path_cut_is_small(self):
        g = gen.path(40)
        assign = grow_bisection(g, 20.0, seed=3, attempts=8)
        assert edge_cut(g, assign) <= 3


class TestRandomBisection:
    def test_weight_target(self, ba_graph):
        assign = random_bisection(ba_graph, 100.0, seed=4)
        w0 = ba_graph.vertex_weights[assign == 0].sum()
        assert 90 <= w0 <= 110


class TestFmRefine:
    def test_never_worse(self, ba_graph):
        rng = np.random.default_rng(5)
        assign = rng.integers(0, 2, ba_graph.n)
        before = edge_cut(ba_graph, assign)
        total = ba_graph.vertex_weights.sum()
        out = fm_refine(ba_graph, assign, (0.6 * total, 0.6 * total))
        assert edge_cut(ba_graph, out) <= before

    def test_input_not_mutated(self, ba_graph):
        assign = np.zeros(ba_graph.n, dtype=np.int64)
        assign[::2] = 1
        snapshot = assign.copy()
        total = ba_graph.vertex_weights.sum()
        fm_refine(ba_graph, assign, (0.6 * total, 0.6 * total))
        assert np.array_equal(assign, snapshot)

    def test_respects_balance_cap(self, ba_graph):
        rng = np.random.default_rng(6)
        assign = rng.integers(0, 2, ba_graph.n)
        total = ba_graph.vertex_weights.sum()
        cap = (0.55 * total, 0.55 * total)
        out = fm_refine(ba_graph, assign, cap)
        w0 = ba_graph.vertex_weights[out == 0].sum()
        w1 = total - w0
        assert w0 <= cap[0] + 1e-9 and w1 <= cap[1] + 1e-9

    def test_finds_obvious_cut(self):
        # Two cliques joined by one edge; start from a bad split.
        edges = []
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((i, j, 10.0))
                edges.append((5 + i, 5 + j, 10.0))
        edges.append((0, 5, 1.0))
        g = from_edges(10, edges)
        bad = np.asarray([0, 1, 0, 1, 0, 1, 0, 1, 0, 1])
        out = fm_refine(g, bad, (6.0, 6.0), max_passes=20)
        assert edge_cut(g, out) == 1.0

    def test_empty_graph(self):
        g = from_edges(0, [])
        assert fm_refine(g, np.empty(0, dtype=np.int64), (1.0, 1.0)).size == 0
