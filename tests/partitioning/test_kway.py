"""Tests for multilevel bisection, k-way partitioning and rebalancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BalanceError
from repro.graphs import generators as gen
from repro.partitioning.kway import partition_kway
from repro.partitioning.metrics import edge_cut
from repro.partitioning.multilevel import bisect_multilevel
from repro.partitioning.partition import Partition
from repro.partitioning.rebalance import balance_limit, rebalance


class TestBisectMultilevel:
    def test_balanced_halves(self, ba_graph):
        assign = bisect_multilevel(ba_graph, seed=1)
        w0 = (assign == 0).sum()
        assert abs(w0 - ba_graph.n / 2) <= 0.05 * ba_graph.n

    def test_uneven_fraction(self, ba_graph):
        assign = bisect_multilevel(ba_graph, weight_fraction_0=0.25, seed=2)
        w0 = (assign == 0).sum()
        assert abs(w0 - ba_graph.n / 4) <= 0.06 * ba_graph.n

    def test_better_than_random(self, ba_graph):
        rng = np.random.default_rng(3)
        random_cut = edge_cut(ba_graph, rng.integers(0, 2, ba_graph.n))
        ml_cut = edge_cut(ba_graph, bisect_multilevel(ba_graph, seed=3))
        assert ml_cut < random_cut

    def test_grid_bisection_near_optimal(self):
        g = gen.grid(8, 8)
        assign = bisect_multilevel(g, seed=4)
        assert edge_cut(g, assign) <= 12  # optimal is 8

    def test_invalid_fraction(self, ba_graph):
        with pytest.raises(ValueError):
            bisect_multilevel(ba_graph, weight_fraction_0=1.5)

    def test_tiny_graphs(self):
        assert bisect_multilevel(gen.path(1)).tolist() == [0]
        out = bisect_multilevel(gen.path(2), seed=5)
        assert sorted(out.tolist()) == [0, 1]


class TestPartitionKway:
    @pytest.mark.parametrize("k", [2, 5, 16, 64])
    def test_balance_eq1(self, ba_graph, k):
        part = partition_kway(ba_graph, k, epsilon=0.03, seed=7)
        part.check_balance(0.03)
        assert part.k == k

    def test_k1_trivial(self, ba_graph):
        part = partition_kway(ba_graph, 1)
        assert part.edge_cut() == 0.0

    def test_invalid_k(self, ba_graph):
        with pytest.raises(ValueError):
            partition_kway(ba_graph, 0)

    def test_all_blocks_used(self, ba_graph):
        part = partition_kway(ba_graph, 16, seed=8)
        assert len(np.unique(part.assignment)) == 16

    def test_deterministic_under_seed(self, ba_graph):
        a = partition_kway(ba_graph, 8, seed=9)
        b = partition_kway(ba_graph, 8, seed=9)
        assert np.array_equal(a.assignment, b.assignment)

    def test_quality_sane_on_grid(self):
        g = gen.grid(16, 16)
        part = partition_kway(g, 16, seed=10)
        # 16 blocks of 16 on a 16x16 grid: a sane partitioner stays well
        # under the random-assignment cut (~450).
        assert part.edge_cut() < 150

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=2, max_value=24), seed=st.integers(0, 1000))
    def test_property_balance_holds(self, k, seed):
        g = gen.barabasi_albert(200, 3, seed=123)
        part = partition_kway(g, k, epsilon=0.03, seed=seed)
        part.check_balance(0.03)


class TestRebalance:
    def test_fixes_overload(self, ba_graph):
        # Dump everything in block 0, then rebalance to 4 blocks.
        part = Partition(ba_graph, np.zeros(ba_graph.n, dtype=np.int64), 4)
        fixed = rebalance(part, epsilon=0.03)
        fixed.check_balance(0.03)

    def test_noop_when_balanced(self, ba_graph):
        part = partition_kway(ba_graph, 4, epsilon=0.03, seed=11)
        again = rebalance(part, epsilon=0.03)
        assert np.array_equal(again.assignment, part.assignment)

    def test_limit_formula(self, ba_graph):
        assert balance_limit(ba_graph, 4, 0.0) == np.ceil(ba_graph.n / 4)

    def test_infeasible_raises(self):
        from repro.graphs.builder import from_edges

        g2 = from_edges(2, [(0, 1)], vertex_weights=[10.0, 1.0])
        part = Partition(g2, np.asarray([0, 0]), 2)
        with pytest.raises(BalanceError):
            rebalance(part, epsilon=0.0)
