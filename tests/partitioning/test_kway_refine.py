"""Tests for direct k-way boundary refinement."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.partitioning.kway import partition_kway
from repro.partitioning.kway_refine import kway_refine
from repro.partitioning.partition import Partition


class TestKwayRefine:
    def test_never_worse(self, ba_graph):
        rng = np.random.default_rng(1)
        part = Partition(ba_graph, rng.integers(0, 8, ba_graph.n), 8)
        refined = kway_refine(part, epsilon=0.1)
        assert refined.edge_cut() <= part.edge_cut()

    def test_respects_balance_cap(self, ba_graph):
        part = Partition(ba_graph, (np.arange(ba_graph.n) % 8), 8)
        refined = kway_refine(part, epsilon=0.03)
        refined.check_balance(0.03)

    def test_improves_random_assignment_substantially(self, ba_graph):
        rng = np.random.default_rng(3)
        part = Partition(ba_graph, rng.integers(0, 4, ba_graph.n), 4)
        refined = kway_refine(part, epsilon=0.25, max_passes=8)
        assert refined.edge_cut() < 0.9 * part.edge_cut()

    def test_fixed_point_of_good_partition(self):
        """A clean quadrant partition of a grid is locally optimal."""
        g = gen.grid(4, 4)
        assign = np.asarray([(v // 8) * 2 + ((v % 4) // 2) for v in range(16)])
        part = Partition(g, assign, 4)
        refined = kway_refine(part, epsilon=0.0)
        assert refined.edge_cut() == part.edge_cut()

    def test_block_count_preserved(self, ba_graph):
        rng = np.random.default_rng(4)
        part = Partition(ba_graph, rng.integers(0, 6, ba_graph.n), 6)
        refined = kway_refine(part, epsilon=0.2)
        assert refined.k == 6

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(2, 12))
    def test_property_balance_and_monotone(self, seed, k):
        g = gen.barabasi_albert(150, 3, seed=99)
        rng = np.random.default_rng(seed)
        # start from a balanced-ish random partition
        assign = np.arange(g.n) % k
        rng.shuffle(assign)
        part = Partition(g, assign, k)
        refined = kway_refine(part, epsilon=0.05)
        assert refined.edge_cut() <= part.edge_cut()
        refined.check_balance(0.05)


class TestIntegrationWithKway:
    def test_refinement_helps_partitioner(self, ba_graph):
        no_ref = partition_kway(ba_graph, 16, seed=5, kway_passes=0)
        with_ref = partition_kway(ba_graph, 16, seed=5, kway_passes=2)
        assert with_ref.edge_cut() <= no_ref.edge_cut()
        with_ref.check_balance(0.03)
