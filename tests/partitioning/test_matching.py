"""Tests for heavy-edge matching."""


from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.partitioning.matching import (
    UNMATCHED,
    heavy_edge_matching,
    matching_to_coarse_map,
)


class TestMatchingValidity:
    def test_symmetric(self, ba_graph):
        match = heavy_edge_matching(ba_graph, seed=1)
        for v in range(ba_graph.n):
            assert match[match[v]] == v  # involution (self or partner)

    def test_matched_pairs_are_edges(self, ba_graph):
        match = heavy_edge_matching(ba_graph, seed=2)
        for v in range(ba_graph.n):
            u = int(match[v])
            if u != v:
                assert ba_graph.has_edge(v, u)

    def test_no_unmatched_marker_left(self, ba_graph):
        match = heavy_edge_matching(ba_graph, seed=3)
        assert (match != UNMATCHED).all()

    def test_prefers_heavy_edge(self):
        # Heavy pairs (0,1) and (2,3) joined by a light bridge: every
        # visit order must produce the heavy matching.
        g = from_edges(4, [(0, 1, 10.0), (2, 3, 10.0), (1, 2, 1.0)])
        for seed in range(8):
            match = heavy_edge_matching(g, seed=seed)
            assert match[0] == 1 and match[2] == 3

    def test_weight_cap_respected(self):
        g = from_edges(2, [(0, 1, 5.0)], vertex_weights=[3.0, 3.0])
        match = heavy_edge_matching(g, seed=0, max_vertex_weight=4.0)
        assert match[0] == 0 and match[1] == 1


class TestCoarseMap:
    def test_pairs_share_id(self, ba_graph):
        match = heavy_edge_matching(ba_graph, seed=4)
        coarse_of, n_coarse = matching_to_coarse_map(match)
        for v in range(ba_graph.n):
            assert coarse_of[v] == coarse_of[match[v]]
        assert n_coarse == len(set(coarse_of.tolist()))

    def test_ids_contiguous(self, ba_graph):
        match = heavy_edge_matching(ba_graph, seed=5)
        coarse_of, n_coarse = matching_to_coarse_map(match)
        assert sorted(set(coarse_of.tolist())) == list(range(n_coarse))

    def test_halving(self):
        g = gen.cycle(20)
        match = heavy_edge_matching(g, seed=6)
        _, n_coarse = matching_to_coarse_map(match)
        assert n_coarse <= 15  # cycles match nearly perfectly
