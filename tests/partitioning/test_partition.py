"""Tests for the Partition value type."""

import numpy as np
import pytest

from repro.errors import BalanceError
from repro.graphs.builder import from_edges
from repro.partitioning.partition import Partition


@pytest.fixture
def p4(small_grid):
    """4x4 grid split into 4 quadrant blocks."""
    assign = np.asarray([(v // 8) * 2 + ((v % 4) // 2) for v in range(16)])
    return Partition(small_grid, assign, 4)


class TestMetrics:
    def test_block_sizes(self, p4):
        assert p4.block_sizes().tolist() == [4, 4, 4, 4]

    def test_block_weights_unit(self, p4):
        assert p4.block_weights().tolist() == [4.0, 4.0, 4.0, 4.0]

    def test_edge_cut_quadrants(self, p4):
        # 4x4 grid quadrant cut: 4 horizontal + 4 vertical crossing edges
        assert p4.edge_cut() == 8.0

    def test_imbalance_zero(self, p4):
        assert p4.imbalance() == 0.0

    def test_block_members(self, p4):
        members = p4.block_members(0)
        assert sorted(members.tolist()) == [0, 1, 4, 5]

    def test_weighted_cut(self):
        g = from_edges(3, [(0, 1, 5.0), (1, 2, 1.0)])
        part = Partition(g, np.asarray([0, 0, 1]), 2)
        assert part.edge_cut() == 1.0


class TestBalance:
    def test_balanced_passes(self, p4):
        p4.check_balance(0.0)

    def test_unbalanced_raises(self, small_grid):
        assign = np.zeros(16, dtype=np.int64)
        assign[0] = 1
        part = Partition(small_grid, assign, 2)
        with pytest.raises(BalanceError):
            part.check_balance(0.03)
        assert not part.is_balanced(0.03)

    def test_eq1_uses_ceiling(self):
        # 5 vertices in 2 blocks: ceil(5/2)=3 means a 3/2 split is balanced
        g = from_edges(5, [(i, i + 1) for i in range(4)])
        part = Partition(g, np.asarray([0, 0, 0, 1, 1]), 2)
        part.check_balance(0.0)


class TestConstruction:
    def test_rejects_out_of_range(self, small_grid):
        with pytest.raises(ValueError):
            Partition(small_grid, np.full(16, 7), 4)

    def test_rejects_wrong_length(self, small_grid):
        with pytest.raises(ValueError):
            Partition(small_grid, np.zeros(4), 4)

    def test_with_assignment(self, p4):
        q = p4.with_assignment(np.zeros(16, dtype=np.int64))
        assert q.edge_cut() == 0.0

    def test_renumbered_drops_empty(self, small_grid):
        part = Partition(small_grid, np.full(16, 3), 5)
        ren = part.renumbered()
        assert ren.k == 1
        assert (ren.assignment == 0).all()
