"""Shared fixtures: the serve layer configures process-wide caches, so
every test restores the session LRU's limit and contents."""

import pytest

from repro.api.topology import Topology, session_cache


@pytest.fixture(autouse=True)
def isolated_sessions():
    cache = session_cache()
    limit = cache.max_sessions
    Topology.clear_sessions()
    yield
    cache.set_limit(limit)
    Topology.clear_sessions()
