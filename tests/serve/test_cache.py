"""Two-tier topology cache: LRU sharing, eviction, disk fallback."""

from repro.api.topology import (
    LABELING_CACHE_ENV,
    Topology,
    labeling_stats,
    session_cache,
)
from repro.serve.cache import TopologyCache


class TestSingleSourceOfTruth:
    def test_lru_is_the_from_name_cache(self):
        cache = TopologyCache()
        assert cache.sessions is session_cache()
        t1 = cache.get("grid4x4")
        t2 = Topology.from_name("grid4x4")
        assert t1 is t2  # one session object, no double-caching

    def test_labeling_computed_once_across_both_entry_points(self):
        base = labeling_stats()["computed"]
        cache = TopologyCache()
        cache.get("grid4x4").labeling
        Topology.from_name("grid4x4").labeling
        cache.get("grid4x4").labeling
        assert labeling_stats()["computed"] - base == 1


class TestLRUBounds:
    def test_eviction_order_and_counters(self):
        cache = TopologyCache(max_sessions=2)
        cache.get("grid4x4")
        cache.get("hq4")
        cache.get("grid4x4")  # refresh: hq4 is now least recent
        cache.get("dragonfly4x2")  # evicts hq4
        sessions = cache.sessions
        assert "grid4x4" in sessions and "dragonfly4x2" in sessions
        assert "hq4" not in sessions
        stats = cache.stats()["sessions"]
        assert stats["evictions"] == 1
        assert stats["size"] == 2 and stats["limit"] == 2
        assert stats["hits"] >= 1 and stats["misses"] >= 3

    def test_default_construction_keeps_the_operator_limit(self):
        TopologyCache(max_sessions=3)
        TopologyCache()  # e.g. BatchScheduler's default cache argument
        assert session_cache().max_sessions == 3
        TopologyCache(max_sessions=None)  # explicit None = unbounded
        assert session_cache().max_sessions is None

    def test_shrinking_limit_evicts_now(self):
        cache = TopologyCache()
        cache.get("grid4x4")
        cache.get("hq4")
        cache.sessions.set_limit(1)
        assert len(cache.sessions) == 1
        assert "hq4" in cache.sessions  # most recent survives

    def test_eviction_falls_back_to_disk_not_recompute(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LABELING_CACHE_ENV, str(tmp_path / "labelings"))
        cache = TopologyCache(max_sessions=1)
        base = labeling_stats()
        cache.get("grid4x4").labeling  # computed + stored to disk
        cache.get("hq4").labeling  # evicts grid4x4's session
        cache.get("grid4x4").labeling  # rebuilt session, disk tier hit
        delta = cache.stats()
        assert labeling_stats()["computed"] - base["computed"] == 2
        assert delta["disk"]["hits"] >= 1
        assert delta["disk"]["stores"] >= 2


class TestSpecResolution:
    def test_file_topologies_bypass_the_name_cache(self, tmp_path):
        from repro.graphs import generators as gen
        from repro.graphs.io import write_metis

        path = tmp_path / "ring.graph"
        write_metis(gen.cycle(8), path)
        cache = TopologyCache()
        t1 = cache.get(str(path))
        t2 = cache.get(str(path))
        assert t1 is not t2  # files re-read, never cached by spelling
        assert str(path) not in cache.sessions

    def test_warm_precomputes(self):
        cache = TopologyCache()
        base = labeling_stats()["computed"]
        cache.warm(["grid4x4", "hq4"])
        assert labeling_stats()["computed"] - base == 2
        assert cache.get("grid4x4")._labeling is not None


class TestResponseCache:
    def _make(self, **kwargs):
        from repro.serve.cache import ResponseCache

        return ResponseCache(**kwargs)

    def test_lru_eviction_by_entry_count(self):
        cache = self._make(max_entries=2)
        cache.put(("a",), "ra")
        cache.put(("b",), "rb")
        assert cache.get(("a",)) == "ra"  # refresh: b is now LRU
        cache.put(("c",), "rc")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "ra" and cache.get(("c",)) == "rc"
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["entries"] == 2

    def test_eviction_by_byte_budget(self):
        import pickle

        payload = "x" * 1000
        size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        cache = self._make(max_entries=100, max_bytes=2 * size)
        cache.put(("a",), payload)
        cache.put(("b",), payload)
        assert len(cache) == 2 and cache.bytes <= cache.max_bytes
        cache.put(("c",), payload)  # over budget: LRU "a" evicted
        assert cache.get(("a",)) is None
        assert len(cache) == 2 and cache.bytes <= cache.max_bytes
        assert cache.stats()["evictions"] == 1

    def test_oversized_entry_is_not_stored(self):
        cache = self._make(max_entries=10, max_bytes=64)
        cache.put(("big",), "y" * 10_000)
        assert len(cache) == 0 and cache.bytes == 0
        assert cache.stats()["evictions"] == 0  # skipped, nothing flushed

    def test_replacing_a_key_adjusts_bytes(self):
        cache = self._make()
        cache.put(("k",), "small")
        first = cache.bytes
        cache.put(("k",), "a much longer replacement value")
        assert len(cache) == 1 and cache.bytes != first

    def test_zero_disables(self):
        for kwargs in ({"max_entries": 0}, {"max_bytes": 0}):
            cache = self._make(**kwargs)
            assert not cache.enabled
            cache.put(("k",), "v")
            assert len(cache) == 0

    def test_negative_bounds_rejected(self):
        from repro.errors import ConfigurationError
        import pytest

        with pytest.raises(ConfigurationError):
            self._make(max_entries=-1)
        with pytest.raises(ConfigurationError):
            self._make(max_bytes=-1)

    def test_key_is_backend_independent(self):
        """Requests differing only in kernel backend share one cache cell.

        ``PipelineConfig.IDENTITY_EXCLUDED`` keeps ``backend`` out of
        ``identity()``; the scheduler's response-cache key is built from
        ``group_key() + work_key()``, so the audit here is that those
        keys collide exactly when the results are byte-identical.
        """
        from repro.serve.scheduler import GraphSpec, MapRequest
        from repro.serve.service import parse_config

        def key_for(backend):
            request = MapRequest(
                topology="grid4x4",
                graph=GraphSpec(kind="generate", instance="p2p-Gnutella", seed=1),
                config=parse_config({"nh": 1, "backend": backend}),
                seed=1,
            )
            return (request.group_key(),) + request.work_key()

        assert key_for("") == key_for("numpy")
        cache = self._make()
        cache.put(key_for(""), "shared-result")
        assert cache.get(key_for("numpy")) == "shared-result"
