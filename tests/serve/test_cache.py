"""Two-tier topology cache: LRU sharing, eviction, disk fallback."""

from repro.api.topology import (
    LABELING_CACHE_ENV,
    Topology,
    labeling_stats,
    session_cache,
)
from repro.serve.cache import TopologyCache


class TestSingleSourceOfTruth:
    def test_lru_is_the_from_name_cache(self):
        cache = TopologyCache()
        assert cache.sessions is session_cache()
        t1 = cache.get("grid4x4")
        t2 = Topology.from_name("grid4x4")
        assert t1 is t2  # one session object, no double-caching

    def test_labeling_computed_once_across_both_entry_points(self):
        base = labeling_stats()["computed"]
        cache = TopologyCache()
        cache.get("grid4x4").labeling
        Topology.from_name("grid4x4").labeling
        cache.get("grid4x4").labeling
        assert labeling_stats()["computed"] - base == 1


class TestLRUBounds:
    def test_eviction_order_and_counters(self):
        cache = TopologyCache(max_sessions=2)
        cache.get("grid4x4")
        cache.get("hq4")
        cache.get("grid4x4")  # refresh: hq4 is now least recent
        cache.get("dragonfly4x2")  # evicts hq4
        sessions = cache.sessions
        assert "grid4x4" in sessions and "dragonfly4x2" in sessions
        assert "hq4" not in sessions
        stats = cache.stats()["sessions"]
        assert stats["evictions"] == 1
        assert stats["size"] == 2 and stats["limit"] == 2
        assert stats["hits"] >= 1 and stats["misses"] >= 3

    def test_default_construction_keeps_the_operator_limit(self):
        TopologyCache(max_sessions=3)
        TopologyCache()  # e.g. BatchScheduler's default cache argument
        assert session_cache().max_sessions == 3
        TopologyCache(max_sessions=None)  # explicit None = unbounded
        assert session_cache().max_sessions is None

    def test_shrinking_limit_evicts_now(self):
        cache = TopologyCache()
        cache.get("grid4x4")
        cache.get("hq4")
        cache.sessions.set_limit(1)
        assert len(cache.sessions) == 1
        assert "hq4" in cache.sessions  # most recent survives

    def test_eviction_falls_back_to_disk_not_recompute(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LABELING_CACHE_ENV, str(tmp_path / "labelings"))
        cache = TopologyCache(max_sessions=1)
        base = labeling_stats()
        cache.get("grid4x4").labeling  # computed + stored to disk
        cache.get("hq4").labeling  # evicts grid4x4's session
        cache.get("grid4x4").labeling  # rebuilt session, disk tier hit
        delta = cache.stats()
        assert labeling_stats()["computed"] - base["computed"] == 2
        assert delta["disk"]["hits"] >= 1
        assert delta["disk"]["stores"] >= 2


class TestSpecResolution:
    def test_file_topologies_bypass_the_name_cache(self, tmp_path):
        from repro.graphs import generators as gen
        from repro.graphs.io import write_metis

        path = tmp_path / "ring.graph"
        write_metis(gen.cycle(8), path)
        cache = TopologyCache()
        t1 = cache.get(str(path))
        t2 = cache.get(str(path))
        assert t1 is not t2  # files re-read, never cached by spelling
        assert str(path) not in cache.sessions

    def test_warm_precomputes(self):
        cache = TopologyCache()
        base = labeling_stats()["computed"]
        cache.warm(["grid4x4", "hq4"])
        assert labeling_stats()["computed"] - base == 2
        assert cache.get("grid4x4")._labeling is not None
