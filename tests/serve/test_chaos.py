"""Failure-edge behavior of the scheduler: crashes, retries, breakers,
degradation.  Every surviving response must stay byte-identical to a
direct ``Pipeline.run`` -- fault tolerance never buys approximation on
the non-degraded path."""

import asyncio
import time

import numpy as np
import pytest

from repro.api.pipeline import Pipeline
from repro.errors import (
    CircuitOpenError,
    PoisonRequestError,
    TransientError,
)
from repro.serve.faults import FAULTS_ENV, FaultPlan
from repro.serve.retry import CircuitBreaker, RetryPolicy
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    GraphSpec,
    MapRequest,
)
from repro.serve.service import parse_config


@pytest.fixture(autouse=True)
def no_fault_leakage():
    # Pool-backed schedulers export their plan into the environment for
    # worker startup (FaultPlan.install); monkeypatch.delenv on an
    # *absent* variable records nothing to restore, so save/restore by
    # hand or one test's chaos leaks into every later test.
    import os

    saved = os.environ.pop(FAULTS_ENV, None)
    yield
    if saved is None:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = saved


def _request(seed=0, instance="p2p-Gnutella", topology="grid4x4", **kwargs):
    return MapRequest(
        topology=topology,
        graph=GraphSpec(kind="generate", instance=instance, seed=seed),
        config=parse_config({"nh": 1}),
        seed=seed,
        **kwargs,
    )


def _direct(request):
    pipe = Pipeline(request.topology, request.config)
    return pipe.run(request.graph.build(), seed=request.seed)


def run(coro):
    return asyncio.run(coro)


class TestWorkerCrashRecovery:
    def test_killed_worker_mid_batch_with_coalesced_waiters(self):
        # Three requests, two coalesced onto one work item.  The only
        # worker dies before its first task; the supervisor restarts it
        # and requeues, and every waiter still gets the exact payload.
        requests = [_request(seed=1), _request(seed=1), _request(seed=2)]
        direct = [_direct(r) for r in requests]

        async def go():
            scheduler = BatchScheduler(
                window_s=0.05,
                max_batch=8,
                workers=1,
                faults=FaultPlan(kill_task_indices=(0,)),
            )
            try:
                served = await asyncio.gather(
                    *(scheduler.submit(r) for r in requests)
                )
                return served, scheduler.metrics.render_json()
            finally:
                scheduler.close()

        served, metrics = run(go())
        for s, d in zip(served, direct):
            assert np.array_equal(s.result.mu_final, d.mu_final)
            assert s.result.metrics == d.metrics
            assert not s.degraded
        assert served[1].coalesced  # coalescing survived the crash
        assert metrics["worker_restarts"] == 1

    def test_poison_request_isolated_batchmates_succeed(self):
        # seed 777 appears in its work item's repr; the marker makes any
        # worker touching it die, in every generation.  Bisection must
        # corner it: 500 for the poison, exact payloads for the rest.
        poison = _request(seed=777)
        mates = [_request(seed=1), _request(seed=2)]
        direct = [_direct(r) for r in mates]

        async def go():
            scheduler = BatchScheduler(
                window_s=0.05,
                max_batch=8,
                workers=1,
                faults=FaultPlan(poison_markers=("777",)),
            )
            try:
                results = await asyncio.gather(
                    scheduler.submit(mates[0]),
                    scheduler.submit(mates[1]),
                    scheduler.submit(poison),
                    return_exceptions=True,
                )
                return results, scheduler.metrics.render_json()
            finally:
                scheduler.close()

        results, metrics = run(go())
        assert isinstance(results[2], PoisonRequestError)
        for served, d in zip(results[:2], direct):
            assert np.array_equal(served.result.mu_final, d.mu_final)
        assert metrics["poisoned_requests"] == 1
        assert metrics["failures_total"]["PoisonRequestError"] == 1


class TestRetries:
    def _flaky_pipe(self, scheduler, request, failures):
        """Make the group's pipeline fail ``failures`` times, then work."""
        pipe = scheduler.pipeline_for(request)
        real = pipe.run_batch
        calls = {"n": 0}

        def run_batch(graphs, seeds=None, jobs=1):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise TransientError("injected batch failure")
            return real(graphs, seeds=seeds, jobs=jobs)

        pipe.run_batch = run_batch
        return calls

    def test_transient_failure_retried_to_success(self):
        request = _request(seed=4)
        direct = _direct(request)

        async def go():
            scheduler = BatchScheduler(
                window_s=0.01,
                retry=RetryPolicy(max_attempts=3, base_delay=0.001),
            )
            calls = self._flaky_pipe(scheduler, request, failures=1)
            try:
                served = await scheduler.submit(request)
                return served, calls["n"], scheduler.metrics.render_json()
            finally:
                scheduler.close()

        served, calls, metrics = run(go())
        assert np.array_equal(served.result.mu_final, direct.mu_final)
        assert calls == 2
        assert metrics["retries_total"] == 1

    def test_retry_exhaustion_surfaces_transient(self):
        request = _request(seed=4)

        async def go():
            scheduler = BatchScheduler(
                window_s=0.01,
                retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            )
            self._flaky_pipe(scheduler, request, failures=99)
            try:
                with pytest.raises(TransientError, match="injected"):
                    await scheduler.submit(request)
                return scheduler.metrics.render_json()
            finally:
                scheduler.close()

        metrics = run(go())
        assert metrics["retries_total"] == 1  # one backoff, then gave up
        assert metrics["failures_total"]["TransientError"] == 1

    def test_deadline_expiry_during_backoff(self):
        # The next backoff would outlive every waiter's deadline: fail
        # the item immediately instead of sleeping + recomputing.
        request = _request(seed=4, deadline_s=0.25)

        async def go():
            scheduler = BatchScheduler(
                window_s=0.01,
                retry=RetryPolicy(max_attempts=3, base_delay=5.0, max_delay=5.0),
            )
            self._flaky_pipe(scheduler, request, failures=99)
            try:
                t0 = time.monotonic()
                with pytest.raises(DeadlineExceededError, match="backoff"):
                    await scheduler.submit(request)
                return time.monotonic() - t0, scheduler.metrics.render_json()
            finally:
                scheduler.close()

        elapsed, metrics = run(go())
        assert elapsed < 2.0  # did not serve out the 5s backoff
        assert metrics["rejected_total"]["deadline_retry"] == 1
        assert metrics["retries_total"] == 0


class TestBreaker:
    def test_open_half_open_closed_through_scheduler(self):
        request = _request(seed=4)
        direct = _direct(request)

        async def go():
            scheduler = BatchScheduler(
                window_s=0.01,
                retry=RetryPolicy(max_attempts=1),
                breaker_threshold=1,
                breaker_reset_s=0.15,
            )
            calls = TestRetries()._flaky_pipe(scheduler, request, failures=1)
            try:
                with pytest.raises(TransientError):
                    await scheduler.submit(request)  # opens the breaker
                with pytest.raises(CircuitOpenError) as err:
                    await scheduler.submit(request)  # shed while open
                assert err.value.retry_after > 0
                open_metrics = dict(scheduler.metrics.render_json())
                await asyncio.sleep(0.2)  # past reset_s: half-open probe
                served = await scheduler.submit(request)
                snap = scheduler.breaker_snapshot()
                return served, calls["n"], open_metrics, snap
            finally:
                scheduler.close()

        served, calls, open_metrics, snap = run(go())
        assert np.array_equal(served.result.mu_final, direct.mu_final)
        assert calls == 2  # shed request never reached compute
        assert open_metrics["rejected_total"]["breaker_open"] == 1
        assert open_metrics["breakers_open"] == 1
        (state,) = {s["state"] for s in snap.values()}
        assert state == CircuitBreaker.CLOSED


class TestDegradation:
    def test_breaker_open_served_from_response_cache(self):
        # The response cache answers *before* admission and the breaker,
        # so a previously computed identity keeps serving -- at full
        # fidelity, no degraded opt-in needed -- even while the group's
        # circuit is open.
        request = _request(seed=4)

        async def go():
            scheduler = BatchScheduler(window_s=0.01, breaker_threshold=1)
            try:
                first = await scheduler.submit(request)  # warms the cache
                breaker = scheduler.breaker_for(request.group_key())
                breaker.record_failure()  # force the group unhealthy
                served = await scheduler.submit(request)
                return first, served, scheduler.metrics.render_json()
            finally:
                scheduler.close()

        first, served, metrics = run(go())
        assert served.cached and not served.degraded
        assert np.array_equal(served.result.mu_final, first.result.mu_final)
        assert metrics["response_cache_hits_total"] == 1
        assert not metrics["degraded_total"]

    def test_breaker_open_without_opt_in_sheds(self):
        request = _request(seed=4)

        async def go():
            scheduler = BatchScheduler(window_s=0.01, breaker_threshold=1)
            try:
                scheduler.breaker_for(request.group_key()).record_failure()
                with pytest.raises(CircuitOpenError):
                    await scheduler.submit(request)
            finally:
                scheduler.close()

        run(go())

    def test_no_cache_hit_falls_back_to_enhance_free_run(self):
        request = _request(seed=4, allow_degraded=True)
        bare = _direct(
            MapRequest(
                topology=request.topology,
                graph=request.graph,
                config=parse_config({"nh": 1, "enhance": "none"}),
                seed=request.seed,
            )
        )

        async def go():
            scheduler = BatchScheduler(window_s=0.01, breaker_threshold=1)
            try:
                scheduler.breaker_for(request.group_key()).record_failure()
                served = await scheduler.submit(request)
                return served
            finally:
                scheduler.close()

        served = run(go())
        assert served.degraded and served.degraded_mode == "no_enhance"
        assert np.array_equal(served.result.mu_final, bare.mu_final)
