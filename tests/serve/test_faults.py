"""Deterministic fault-injection plans (repro.serve.faults)."""

import json

import numpy as np
import pytest
import zipfile

from repro.errors import ConfigurationError, TransientError
from repro.serve.faults import (
    FAULTS_ENV,
    FaultClock,
    FaultPlan,
    corrupt_cache_dir,
    corrupt_npz_file,
    on_item,
    on_task,
)


@pytest.fixture(autouse=True)
def restore_faults_env():
    import os

    saved = os.environ.pop(FAULTS_ENV, None)
    yield
    if saved is None:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = saved


class TestPlanSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            kill_task_indices=(0, 3),
            poison_markers=("boom",),
            item_error_every=5,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_plan_is_inactive(self):
        plan = FaultPlan()
        assert not plan.active
        assert json.loads(plan.to_json()) == {}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan keys"):
            FaultPlan.from_json('{"explode": true}')

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_from_env_and_install(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() == FaultPlan()
        plan = FaultPlan(item_error_every=2)
        plan.install()
        assert FaultPlan.from_env() == plan
        FaultPlan().install()  # inactive plan clears the variable
        assert FAULTS_ENV not in __import__("os").environ

    def test_negative_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(item_error_every=-1)


class TestHooks:
    def test_item_error_cadence_is_deterministic(self):
        plan = FaultPlan(item_error_every=3)
        clock = FaultClock()
        outcomes = []
        for i in range(6):
            try:
                on_item(plan, i, clock)
                outcomes.append("ok")
            except TransientError:
                outcomes.append("err")
        assert outcomes == ["ok", "ok", "err", "ok", "ok", "err"]

    def test_poison_marker_without_kill_raises_transient(self):
        plan = FaultPlan(poison_markers=("seed=99",))
        clock = FaultClock()
        on_item(plan, "seed=1", clock, allow_kill=False)  # no match: fine
        with pytest.raises(TransientError, match="poison"):
            on_item(plan, "request seed=99", clock, allow_kill=False)

    def test_kill_suppressed_in_process(self):
        # allow_kill=False must never kill the calling process.
        plan = FaultPlan(kill_task_indices=(0,))
        on_task(plan, FaultClock(), generation=0, allow_kill=False)

    def test_kill_only_generation_zero(self):
        # generation-scoped kills are a no-op for restarted workers; the
        # fact that this test survives *is* the assertion for gen >= 1.
        plan = FaultPlan(kill_task_indices=(0,))
        on_task(plan, FaultClock(), generation=1)

    def test_inactive_plan_hooks_are_noops(self):
        plan = FaultPlan()
        clock = FaultClock()
        for i in range(10):
            on_task(plan, clock)
            on_item(plan, i, clock)
        assert clock.tasks == 10 and clock.items == 10


class TestNpzCorruption:
    def _write_entry(self, tmp_path, name="a.npz"):
        path = tmp_path / name
        with open(path, "wb") as f:
            np.savez(f, labels=np.arange(16, dtype=np.uint64))
        return path

    def test_truncate_makes_file_unreadable(self, tmp_path):
        path = self._write_entry(tmp_path)
        orig = path.stat().st_size
        corrupt_npz_file(path, mode="truncate")
        assert path.stat().st_size < orig
        with pytest.raises(zipfile.BadZipFile):
            np.load(path)["labels"]

    def test_garbage_keeps_size(self, tmp_path):
        path = self._write_entry(tmp_path)
        orig = path.stat().st_size
        corrupt_npz_file(path, mode="garbage")
        assert path.stat().st_size == orig

    def test_bad_mode_rejected(self, tmp_path):
        path = self._write_entry(tmp_path)
        with pytest.raises(ConfigurationError, match="mode"):
            corrupt_npz_file(path, mode="subtle")

    def test_corrupt_cache_dir_picks_sorted_entry(self, tmp_path):
        self._write_entry(tmp_path, "b.npz")
        a = self._write_entry(tmp_path, "a.npz")
        assert corrupt_cache_dir(tmp_path, index=0) == str(a)

    def test_corrupt_empty_dir_fails_loudly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no npz"):
            corrupt_cache_dir(tmp_path)
