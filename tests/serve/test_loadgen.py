"""Load generator: determinism, mix shape, end-to-end in-process runs."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.serve.loadgen import (
    LoadProfile,
    build_catalog,
    plan_requests,
    run_load,
)
from repro.serve.scheduler import BatchScheduler
from repro.serve.service import MappingService, register_admission_hook


class TestPlanDeterminism:
    def test_same_profile_same_plan(self):
        p = LoadProfile(requests=20, seed=7)
        assert plan_requests(p) == plan_requests(p)

    def test_different_seed_different_plan(self):
        a = plan_requests(LoadProfile(requests=20, seed=0))
        b = plan_requests(LoadProfile(requests=20, seed=1))
        assert a != b

    def test_arrivals_are_open_loop_increasing(self):
        offsets = [t for t, _ in plan_requests(LoadProfile(requests=50, seed=0))]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0
        # mean inter-arrival ~ 1/rate
        mean_gap = offsets[-1] / len(offsets)
        assert 0.2 / 40.0 < mean_gap < 5.0 / 40.0


class TestCatalogAndMix:
    def test_catalog_spans_the_scenario(self):
        profile = LoadProfile(scenario="smoke", seed_pool=2)
        catalog = build_catalog(profile)
        # smoke: 2 instances x 4 topologies x 2 cases x seed_pool
        assert len(catalog) == 2 * 4 * 2 * 2
        topologies = {body["topology"] for body in catalog}
        assert "fattree4x3" in topologies  # wide-label topology included
        assert all(body["config"]["nh"] == profile.nh for body in catalog)

    def test_hot_fraction_one_only_hits_hot_keys(self):
        profile = LoadProfile(requests=40, seed=3, hot_fraction=1.0, hot_keys=2)
        catalog = build_catalog(profile)
        hot = [str(body) for body in catalog[:2]]
        for _t, body in plan_requests(profile):
            assert str(body) in hot

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(requests=0)
        with pytest.raises(ConfigurationError):
            LoadProfile(rate=0)
        with pytest.raises(ConfigurationError):
            LoadProfile(hot_fraction=1.5)

    def test_run_load_needs_exactly_one_target(self):
        with pytest.raises(ConfigurationError):
            asyncio.run(run_load(LoadProfile()))


class TestEndToEnd:
    def test_in_process_run_produces_full_report(self):
        scheduler = BatchScheduler(window_s=0.02, max_batch=8)
        service = MappingService(scheduler)
        profile = LoadProfile(
            requests=10, rate=300.0, seed=0, nh=1, hot_fraction=0.8, hot_keys=2
        )
        try:
            report = asyncio.run(run_load(profile, service=service))
        finally:
            scheduler.close()
            register_admission_hook(None)
        assert report.requests == 10
        assert report.ok == 10 and not report.errors
        assert report.throughput_rps > 0
        assert set(report.latency) >= {"p50", "p95", "p99", "mean", "max"}
        assert report.batch["mean_size"] >= 1.0
        # hot-key skew at this rate must produce some amortization
        assert report.batch["coalesced"] + report.batch["mean_size"] > 1.0
        payload = report.to_json()
        assert payload["profile"]["requests"] == 10
        assert "ok in" in report.render()

    def test_latency_summary_quantiles_and_splits(self):
        scheduler = BatchScheduler(window_s=0.02, max_batch=8)
        service = MappingService(scheduler)
        profile = LoadProfile(
            requests=12, rate=300.0, seed=0, nh=1, seed_pool=1,
        )
        try:
            # fire twice: the second pass replays identities the first
            # computed, so its replies come from the response cache
            first = asyncio.run(run_load(profile, service=service))
            replay = asyncio.run(run_load(profile, service=service))
        finally:
            scheduler.close()
            register_admission_hook(None)
        overall = first.latency_summary["overall"]
        assert overall["count"] == 12
        assert set(overall) == {"count", "mean", "max", "p50", "p95", "p99"}
        assert overall["p50"] <= overall["p95"] <= overall["p99"]
        assert set(first.latency_summary["by_endpoint"]) == {"map"}
        assert first.latency_summary["by_endpoint"]["map"]["count"] == 12
        # the split populations partition each run: the first pass
        # computed everything, the replay served everything from cache
        assert first.latency_summary["uncached"]["count"] == 12
        assert first.latency_summary["cached"] == {"count": 0}
        summary = replay.latency_summary
        assert summary["cached"]["count"] == replay.cached == 12
        assert summary["uncached"] == {"count": 0}
        assert summary["degraded"] == {"count": 0}
        # cache hits skip compute entirely: visibly cheaper
        assert summary["cached"]["p50"] < overall["p50"]


class TestTrafficKnobs:
    def test_default_plan_unchanged_by_knob_code(self):
        # The knobs draw from their own RNG streams only when enabled, so
        # a plain profile's plan is byte-identical to the pre-knob plans.
        plain = plan_requests(LoadProfile(requests=30, seed=5))
        spelled = plan_requests(
            LoadProfile(
                requests=30, seed=5, repeat_fraction=0.0, enhance_fraction=0.0
            )
        )
        assert plain == spelled
        assert all(body.get("op", "map") == "map" for _t, body in plain)

    def test_repeat_fraction_replays_earlier_bodies(self):
        profile = LoadProfile(requests=60, seed=5, repeat_fraction=0.5)
        plan = plan_requests(profile)
        bodies = [body for _t, body in plan]
        assert len(bodies) > len({str(b) for b in bodies})  # duplicates exist
        # arrivals are untouched by the knob
        plain = plan_requests(LoadProfile(requests=60, seed=5))
        assert [t for t, _ in plan] == [t for t, _ in plain]

    def test_repeat_fraction_one_after_first_is_all_repeats(self):
        plan = plan_requests(
            LoadProfile(requests=20, seed=2, repeat_fraction=1.0)
        )
        seen = {str(plan[0][1])}
        for _t, body in plan[1:]:
            assert str(body) in seen
            seen.add(str(body))

    def test_enhance_fraction_converts_with_valid_mapping(self):
        profile = LoadProfile(requests=30, seed=4, enhance_fraction=0.5)
        plan = plan_requests(profile)
        enhanced = [b for _t, b in plan if b.get("op") == "enhance"]
        assert enhanced, "a 0.5 fraction over 30 requests must convert some"
        for body in enhanced:
            from repro.api.topology import Topology
            from repro.serve.scheduler import GraphSpec

            n = GraphSpec.from_wire(body["graph"]).build().n
            n_pe = Topology.from_name(body["topology"]).graph.n
            assert len(body["mu"]) == n
            assert set(body["mu"]) <= set(range(n_pe))
        # conversion is deterministic
        assert plan == plan_requests(profile)

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(repeat_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            LoadProfile(enhance_fraction=1.1)

    def test_mixed_ops_served_end_to_end(self):
        scheduler = BatchScheduler(window_s=0.02, max_batch=8)
        service = MappingService(scheduler)
        profile = LoadProfile(
            requests=14,
            rate=300.0,
            seed=1,
            nh=1,
            repeat_fraction=0.5,
            enhance_fraction=0.3,
        )
        ops = {b.get("op", "map") for _t, b in plan_requests(profile)}
        assert ops == {"map", "enhance"}
        try:
            report = asyncio.run(run_load(profile, service=service))
        finally:
            scheduler.close()
            register_admission_hook(None)
        assert report.ok == report.requests == 14 and not report.errors
