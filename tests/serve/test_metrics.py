"""Counters, gauges, histograms and the two renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_total_and_labels(self):
        c = Counter("responses_total")
        c.inc(label="200")
        c.inc(label="200")
        c.inc(label="429")
        assert c.value == 3
        assert c.labels() == {"200": 2, "429": 1}

    def test_gauge_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_gauge_labels_track_last_value_per_label(self):
        g = Gauge("quality_cut_edges")
        g.set(12, label="grid4x4")
        g.set(7, label="hq4")
        g.set(9, label="grid4x4")  # overwrite, not accumulate
        assert g.value == 9
        assert g.labels() == {"grid4x4": 9, "hq4": 7}


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram("lat", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.min == 0.05 and h.max == 5.0
        assert h.bucket_counts == [1, 2, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(100.0)
        assert h.bucket_counts == [0, 1]
        assert h.percentile(0.5) == 100.0  # clamped to observed max

    def test_percentiles_bracket_the_data(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(i / 100.0)  # 10ms .. 1s, uniform
        p50, p95 = h.percentile(0.50), h.percentile(0.95)
        assert 0.3 <= p50 <= 0.7
        assert 0.8 <= p95 <= 1.0
        assert h.percentile(0.0) <= p50 <= p95 <= h.percentile(1.0)

    def test_empty_and_validation(self):
        h = Histogram("lat")
        assert h.percentile(0.5) == 0.0
        assert h.snapshot()["count"] == 0
        with pytest.raises(ConfigurationError):
            h.percentile(1.5)
        with pytest.raises(ConfigurationError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_empty_every_quantile_is_zero(self):
        h = Histogram("lat")
        for q in (0.0, 0.5, 1.0):
            assert h.percentile(q) == 0.0

    def test_boundary_quantiles_are_exact_min_and_max(self):
        h = Histogram("lat", bounds=(0.1, 1.0, 10.0))
        for v in (0.07, 0.4, 0.4, 3.0):
            h.observe(v)
        assert h.percentile(0.0) == 0.07  # exact min, never interpolated
        assert h.percentile(1.0) == 3.0   # exact max, never interpolated

    def test_single_observation_is_every_quantile(self):
        # One sample exactly on a bucket boundary: interpolation would
        # report a fraction of the bucket width; the sample itself is
        # the only honest answer at every q.
        h = Histogram("lat", bounds=(0.1, 1.0))
        h.observe(0.1)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0.1

    def test_single_observation_in_overflow_bucket(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(42.0)
        assert h.percentile(0.0) == 42.0
        assert h.percentile(0.5) == 42.0
        assert h.percentile(1.0) == 42.0

    def test_quantiles_stay_monotone_and_clamped(self):
        h = Histogram("lat", bounds=(0.1, 0.2, 0.4, 0.8))
        for v in (0.1, 0.1, 0.2, 0.2, 0.8):
            h.observe(v)
        qs = [h.percentile(q) for q in (0.0, 0.1, 0.5, 0.9, 1.0)]
        assert qs == sorted(qs)
        assert all(h.min <= v <= h.max for v in qs)


class TestRegistry:
    def test_idempotent_and_type_checked(self):
        m = MetricsRegistry()
        c1 = m.counter("requests_total")
        c1.inc()
        assert m.counter("requests_total") is c1
        with pytest.raises(TypeError):
            m.gauge("requests_total")

    def test_render_json_schema(self):
        m = MetricsRegistry()
        m.counter("requests_total").inc(3)
        m.counter("responses_total").inc(label="200")
        m.gauge("queue_depth").set(2)
        h = m.histogram("queue_seconds")
        h.observe(0.01)
        out = m.render_json(extra={"labelings_computed": 1})
        assert out["requests_total"] == 3
        assert out["responses_total"] == {"total": 1, "200": 1}
        assert out["queue_depth"] == 2
        assert out["queue_seconds"]["count"] == 1
        assert set(out["queue_seconds"]) >= {"p50", "p95", "p99", "mean"}
        assert out["labelings_computed"] == 1
        assert out["uptime_seconds"] >= 0

    def test_render_prometheus_text(self):
        m = MetricsRegistry()
        m.counter("requests_total", "admitted").inc(2)
        m.counter("responses_total").inc(label="200")
        h = m.histogram("lat", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = m.render_prometheus(
            extra={"cache_sessions_size": 2, "kernel_backend": "numpy"}
        )
        assert "# HELP repro_serve_requests_total admitted" in text
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 2" in text
        assert 'repro_serve_responses_total{label="200"} 1' in text
        # histogram buckets are cumulative and end with +Inf == count
        assert 'repro_serve_lat_bucket{le="0.1"} 1' in text
        assert 'repro_serve_lat_bucket{le="1"} 2' in text
        assert 'repro_serve_lat_bucket{le="+Inf"} 2' in text
        assert "repro_serve_lat_count 2" in text
        assert "repro_serve_cache_sessions_size 2" in text
        # string extras render info-style: constant-1 gauge, value label
        assert 'repro_serve_kernel_backend_info{value="numpy"} 1' in text
        assert text.endswith("\n")
