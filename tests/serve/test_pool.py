"""Supervised worker pool: results, crash recovery, poison bisection."""

import os

import pytest

from repro.errors import (
    ConfigurationError,
    PoisonRequestError,
    TransientError,
)
from repro.serve.faults import FAULTS_ENV, FaultPlan
from repro.serve.pool import SupervisedPool


# Module-level so both fork and spawn start methods can ship them.
def _double(ctx, item):
    return (ctx or 0) + 2 * item


def _setup_times_ten(payload):
    return payload * 10


def _crash_on_marker(_ctx, item):
    if isinstance(item, str) and item.startswith("die"):
        os._exit(137)
    if isinstance(item, str) and item.startswith("raise"):
        raise TransientError(f"injected for {item}")
    return item


@pytest.fixture(autouse=True)
def no_inherited_faults():
    saved = os.environ.pop(FAULTS_ENV, None)
    yield
    if saved is None:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = saved


class TestBasics:
    def test_results_in_item_order(self):
        with SupervisedPool(_double, workers=2) as pool:
            futures = pool.submit("p", None, [1, 2, 3])
            assert [f.result(timeout=30) for f in futures] == [2, 4, 6]

    def test_setup_payload_reaches_runner(self):
        with SupervisedPool(_double, setup=_setup_times_ten, workers=1) as pool:
            (future,) = pool.submit("p", 4, [1])
            assert future.result(timeout=30) == 42  # ctx 40 + 2*1

    def test_item_exception_fails_only_its_future(self):
        with SupervisedPool(_crash_on_marker, workers=1) as pool:
            futures = pool.submit("p", None, ["a", "raise-1", "b"])
            assert futures[0].result(timeout=30) == "a"
            with pytest.raises(TransientError, match="raise-1"):
                futures[1].result(timeout=30)
            assert futures[2].result(timeout=30) == "b"
            assert pool.stats()["restarts"] == 0  # raise != crash

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SupervisedPool(_double, workers=0)

    def test_submit_after_close_rejected(self):
        pool = SupervisedPool(_double, workers=1)
        pool.close()
        with pytest.raises(TransientError, match="closed"):
            pool.submit("p", None, [1])

    def test_close_fails_pending_futures(self):
        pool = SupervisedPool(_crash_on_marker, workers=1)
        # poison crash-loops until close; its future must not hang forever
        futures = pool.submit("p", None, ["die-loop"])
        pool.close()
        with pytest.raises((TransientError, PoisonRequestError)):
            futures[0].result(timeout=30)


class TestCrashRecovery:
    def test_env_fault_kill_recovers_via_restart(self, monkeypatch):
        # Generation-0 worker dies before its first task; the restarted
        # generation-1 worker (kills are gen-0-scoped) finishes the work.
        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(kill_task_indices=(0,)).to_json()
        )
        with SupervisedPool(_double, workers=1) as pool:
            futures = pool.submit("p", None, [5, 6])
            assert [f.result(timeout=30) for f in futures] == [10, 12]
            stats = pool.stats()
        assert stats["restarts"] == 1 and stats["crashes"] == 1

    def test_poison_item_isolated_by_bisection(self):
        with SupervisedPool(_crash_on_marker, workers=1) as pool:
            futures = pool.submit("p", None, ["a", "b", "die-hard", "c"])
            assert futures[0].result(timeout=60) == "a"
            assert futures[1].result(timeout=60) == "b"
            with pytest.raises(PoisonRequestError, match="die-hard"):
                futures[2].result(timeout=60)
            assert futures[3].result(timeout=60) == "c"
            stats = pool.stats()
        assert stats["poisoned"] == 1
        assert stats["restarts"] >= 3  # whole batch, then bisected halves

    def test_singleton_crash_retries_then_poisons(self):
        with SupervisedPool(_crash_on_marker, workers=1, max_item_retries=1) as pool:
            (future,) = pool.submit("p", None, ["die-solo"])
            with pytest.raises(PoisonRequestError):
                future.result(timeout=60)
            assert pool.stats()["poisoned"] == 1

    def test_batchmates_survive_unharmed_after_crash(self):
        # The recovered outputs must equal a crash-free run's outputs.
        with SupervisedPool(_crash_on_marker, workers=2) as pool:
            clean = [f.result(timeout=30) for f in pool.submit("p", None, ["x", "y"])]
        with SupervisedPool(_crash_on_marker, workers=2) as pool:
            futures = pool.submit("p", None, ["x", "die-once", "y"])
            survivors = [futures[0].result(timeout=60), futures[2].result(timeout=60)]
            with pytest.raises(PoisonRequestError):
                futures[1].result(timeout=60)
        assert survivors == clean


def _whoami(_ctx, item):
    return (os.getpid(), item)


class TestWorkerPinning:
    def test_pinned_tasks_share_their_worker(self):
        with SupervisedPool(_whoami, workers=2) as pool:
            on0 = pool.submit("p", None, ["a", "b"], worker=0)
            on1 = pool.submit("p", None, ["c"], worker=1)
            again0 = pool.submit("p", None, ["d"], worker=0)
            pids0 = {f.result(timeout=30)[0] for f in on0 + again0}
            pids1 = {f.result(timeout=30)[0] for f in on1}
            assert len(pids0) == 1 and len(pids1) == 1
            assert pids0 != pids1

    def test_invalid_pin_rejected(self):
        with SupervisedPool(_double, workers=2) as pool:
            with pytest.raises(ConfigurationError):
                pool.submit("p", None, [1], worker=2)
            with pytest.raises(ConfigurationError):
                pool.submit("p", None, [1], worker=-1)

    def test_pin_survives_crash_restart(self):
        # Worker indices are stable across restarts, so a pin placed
        # before a crash lands on that slot's replacement process.
        with SupervisedPool(_crash_on_marker, workers=2) as pool:
            (dead,) = pool.submit("p", None, ["die-pin"], worker=1)
            with pytest.raises(PoisonRequestError):
                dead.result(timeout=60)
            (alive,) = pool.submit("p", None, ["ok"], worker=1)
            assert alive.result(timeout=60) == "ok"
            assert pool.stats()["restarts"] >= 1
