"""Retry policy and circuit breaker (repro.serve.retry)."""

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    PermanentError,
    TransientError,
)
from repro.serve.retry import CircuitBreaker, RetryPolicy


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestRetryPolicy:
    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.3)
        d1 = policy.delay("k", 1)
        d2 = policy.delay("k", 2)
        d3 = policy.delay("k", 3)
        # jitter scales into [0.5, 1.0) of the exponential base
        assert 0.05 <= d1 < 0.1
        assert 0.1 <= d2 < 0.2
        assert 0.15 <= d3 < 0.3  # capped at max_delay before jitter

    def test_jitter_is_deterministic(self):
        a = RetryPolicy().delay("work-item", 2)
        b = RetryPolicy().delay("work-item", 2)
        assert a == b
        assert RetryPolicy().delay("other-item", 2) != a

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("x"))
        assert not policy.is_retryable(PermanentError("x"))
        assert not policy.is_retryable(ValueError("x"))
        # an open breaker is a verdict, not a fault worth retrying
        assert not policy.is_retryable(CircuitOpenError("x"))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)


class TestCircuitBreaker:
    def _breaker(self, threshold=2, reset_s=10.0):
        clock = FakeClock()
        return CircuitBreaker(
            failure_threshold=threshold, reset_s=reset_s, clock=clock
        ), clock

    def test_full_cycle_closed_open_half_open_closed(self):
        breaker, clock = self._breaker()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.transitions == 3  # open -> half_open -> closed

    def test_half_open_failure_reopens_with_fresh_window(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # probe admitted
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(10.0)  # window restarted

    def test_success_resets_failure_streak(self):
        breaker, _clock = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # streak broken

    def test_check_raises_with_retry_after(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as err:
            breaker.check("grid4x4|deadbeef")
        assert err.value.retry_after == pytest.approx(6.0)

    def test_snapshot(self):
        breaker, _clock = self._breaker()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed" and snap["failures"] == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_s=0)
