"""Micro-batching scheduler: identity, coalescing, backpressure, deadlines."""

import asyncio
import time

import numpy as np
import pytest

from repro.api.pipeline import Pipeline
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    GraphSpec,
    MapRequest,
    QueueFullError,
)
from repro.serve.service import parse_config


def _request(seed=0, instance="p2p-Gnutella", topology="grid4x4", **kwargs):
    return MapRequest(
        topology=topology,
        graph=GraphSpec(kind="generate", instance=instance, seed=seed),
        config=parse_config({"nh": 1}),
        seed=seed,
        **kwargs,
    )


def run(coro):
    return asyncio.run(coro)


class TestByteIdentity:
    """A served request == a direct Pipeline.run, batched or not."""

    def _direct(self, request):
        pipe = Pipeline(request.topology, request.config)
        return pipe.run(request.graph.build(), seed=request.seed)

    def test_served_alone_matches_direct(self):
        request = _request(seed=3)
        direct = self._direct(request)

        async def go():
            scheduler = BatchScheduler(window_s=0.01)
            try:
                return await scheduler.submit(request)
            finally:
                scheduler.close()

        served = run(go())
        assert np.array_equal(served.result.mu_final, direct.mu_final)
        assert served.result.metrics == direct.metrics
        assert served.batch_size == 1 and not served.coalesced

    def test_served_batched_with_others_matches_direct(self):
        requests = [_request(seed=s) for s in (0, 1, 2)]
        direct = [self._direct(r) for r in requests]

        async def go():
            scheduler = BatchScheduler(window_s=0.05, max_batch=8)
            try:
                return await asyncio.gather(
                    *(scheduler.submit(r) for r in requests)
                )
            finally:
                scheduler.close()

        served = run(go())
        assert served[0].batch_size == 3  # really one batch
        for s, d in zip(served, direct):
            assert np.array_equal(s.result.mu_final, d.mu_final)

    def test_served_jobs2_matches_direct(self):
        requests = [_request(seed=s) for s in (0, 1)]
        direct = [self._direct(r) for r in requests]

        async def go():
            scheduler = BatchScheduler(window_s=0.05, max_batch=8, jobs=2)
            try:
                return await asyncio.gather(
                    *(scheduler.submit(r) for r in requests)
                )
            finally:
                scheduler.close()

        served = run(go())
        for s, d in zip(served, direct):
            assert np.array_equal(s.result.mu_final, d.mu_final)


class TestCoalescing:
    def test_identical_requests_computed_once(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.05, max_batch=8)
            try:
                return await asyncio.gather(
                    *(scheduler.submit(_request(seed=7)) for _ in range(3))
                ), scheduler.metrics.render_json()
            finally:
                scheduler.close()

        served, metrics = run(go())
        assert [s.coalesced for s in served] == [False, True, True]
        assert all(s.batch_unique == 1 and s.batch_size == 3 for s in served)
        mus = [s.result.mu_final for s in served]
        assert np.array_equal(mus[0], mus[1]) and np.array_equal(mus[0], mus[2])
        assert metrics["coalesced_total"] == 2

    def test_different_seeds_not_coalesced(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.05, max_batch=8)
            try:
                return await asyncio.gather(
                    scheduler.submit(_request(seed=0)),
                    scheduler.submit(_request(seed=1)),
                )
            finally:
                scheduler.close()

        served = run(go())
        assert all(s.batch_unique == 2 for s in served)
        assert not any(s.coalesced for s in served)


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self):
        async def go():
            scheduler = BatchScheduler(window_s=5.0, max_batch=64, max_queue=2)
            try:
                first = asyncio.ensure_future(scheduler.submit(_request(seed=0)))
                second = asyncio.ensure_future(scheduler.submit(_request(seed=1)))
                await asyncio.sleep(0)  # both admitted, window still open
                with pytest.raises(QueueFullError) as exc:
                    await scheduler.submit(_request(seed=2))
                assert exc.value.retry_after > 0
                assert scheduler.metrics.render_json()["rejected_total"] == {
                    "total": 1.0, "queue_full": 1.0,
                }
                first.cancel()
                second.cancel()
            finally:
                scheduler.close()

        run(go())

    def test_closed_scheduler_rejects(self):
        async def go():
            scheduler = BatchScheduler()
            scheduler.close()
            from repro.errors import ReproError

            with pytest.raises(ReproError, match="closed"):
                await scheduler.submit(_request())

        run(go())


class TestDeadlines:
    def test_expiry_while_queued_skips_compute(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.08, max_batch=8)
            try:
                request = _request(seed=0, deadline_s=0.01)  # < window
                with pytest.raises(DeadlineExceededError, match="in queue"):
                    await scheduler.submit(request)
                json_metrics = scheduler.metrics.render_json()
                assert json_metrics["rejected_total"]["deadline_queued"] == 1
                # nothing was dispatched for it
                assert json_metrics["batches_total"] == 0
            finally:
                scheduler.close()

        run(go())

    def test_expiry_mid_batch_fails_after_compute(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.0, max_batch=8)
            try:
                request = _request(seed=0, deadline_s=0.05)
                pipe = scheduler.pipeline_for(request)
                real_run_batch = pipe.run_batch

                def slow_run_batch(graphs, **kwargs):
                    time.sleep(0.15)  # batch outlives the deadline
                    return real_run_batch(graphs, **kwargs)

                pipe.run_batch = slow_run_batch
                with pytest.raises(DeadlineExceededError, match="during"):
                    await scheduler.submit(request)
                json_metrics = scheduler.metrics.render_json()
                assert json_metrics["rejected_total"]["deadline_compute"] == 1
                assert json_metrics["batches_total"] == 1  # it DID run
            finally:
                scheduler.close()

        run(go())

    def test_mixed_batch_only_expired_requests_fail(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.08, max_batch=8)
            try:
                healthy = scheduler.submit(_request(seed=0))
                doomed = scheduler.submit(_request(seed=1, deadline_s=0.01))
                results = await asyncio.gather(
                    healthy, doomed, return_exceptions=True
                )
                assert not isinstance(results[0], Exception)
                assert isinstance(results[1], DeadlineExceededError)
            finally:
                scheduler.close()

        run(go())


class TestWindows:
    def test_empty_window_flush_is_noop(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.01)
            try:
                scheduler._flush("no-such-group")  # missing group
                result = await scheduler.submit(_request(seed=0))
                # the group now exists but is drained; a stray timer fire
                # must be harmless
                scheduler._flush(_request(seed=0).group_key())
                await asyncio.sleep(0.03)
                assert result.batch_size == 1
                assert scheduler.pending == 0
            finally:
                scheduler.close()

        run(go())

    def test_max_batch_overflow_splits_dispatches(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.5, max_batch=2)
            try:
                served = await asyncio.gather(
                    *(scheduler.submit(_request(seed=s)) for s in range(5))
                )
                # 5 requests with max_batch=2 -> 3 dispatches, none waiting
                # for the long window once the first batch filled
                assert scheduler.metrics.render_json()["batches_total"] == 3
                assert max(s.batch_size for s in served) == 2
            finally:
                scheduler.close()

        run(go())

    def test_pipeline_cache_is_bounded(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.02, max_batch=8,
                                       max_pipelines=2)
            try:
                served = await asyncio.gather(*(
                    scheduler.submit(
                        MapRequest(
                            topology="grid4x4",
                            graph=GraphSpec(kind="generate", seed=0),
                            # distinct epsilons -> distinct group keys
                            config=parse_config({"nh": 1,
                                                 "epsilon": 0.03 + i / 100}),
                            seed=0,
                        )
                    )
                    for i in range(4)
                ))
                assert len(served) == 4
                assert len(scheduler._pipelines) <= 2
                assert scheduler._groups == {}  # drained groups dropped
            finally:
                scheduler.close()

        run(go())

    def test_groups_split_by_topology_and_config(self):
        async def go():
            scheduler = BatchScheduler(window_s=0.05, max_batch=8)
            try:
                a = scheduler.submit(_request(seed=0, topology="grid4x4"))
                b = scheduler.submit(_request(seed=0, topology="hq4"))
                served = await asyncio.gather(a, b)
                assert all(s.batch_size == 1 for s in served)
            finally:
                scheduler.close()

        run(go())


class TestResponseCacheHotPath:
    """The run-identity response cache answers before admission."""

    def test_second_identical_submit_is_served_from_cache(self):
        request = _request(seed=11)

        async def go():
            scheduler = BatchScheduler(window_s=0.01)
            try:
                first = await scheduler.submit(request)
                second = await scheduler.submit(request)
                return first, second, scheduler.metrics.render_json()
            finally:
                scheduler.close()

        first, second, metrics = run(go())
        assert not first.cached and second.cached
        # The replay *is* the remembered result object: byte identity by
        # construction, zero recompute (one batch ever dispatched).
        assert second.result is first.result
        assert np.array_equal(second.result.mu_final, first.result.mu_final)
        assert metrics["batches_total"] == 1
        assert metrics["requests_total"] == 2
        assert metrics["response_cache_hits_total"] == 1
        assert metrics["response_cache_misses_total"] == 1
        assert metrics["response_cache_entries"] == 1
        assert metrics["response_cache_bytes"] > 0

    def test_cache_hit_bypasses_admission_control(self):
        # A full queue sheds fresh work with 429 -- but a remembered
        # identity costs no queue slot and keeps serving.
        request = _request(seed=12)

        async def go():
            scheduler = BatchScheduler(window_s=0.01, max_queue=1)
            try:
                await scheduler.submit(request)
                scheduler._pending = scheduler.max_queue  # saturate
                with pytest.raises(QueueFullError):
                    await scheduler.submit(_request(seed=13))
                return await scheduler.submit(request)
            finally:
                scheduler._pending = 0
                scheduler.close()

        served = run(go())
        assert served.cached

    def test_disabled_cache_recomputes_every_time(self):
        request = _request(seed=11)

        async def go():
            scheduler = BatchScheduler(window_s=0.01, response_cache_size=0)
            try:
                first = await scheduler.submit(request)
                second = await scheduler.submit(request)
                return first, second, scheduler.metrics.render_json()
            finally:
                scheduler.close()

        first, second, metrics = run(go())
        assert not first.cached and not second.cached
        assert metrics["batches_total"] == 2
        assert np.array_equal(second.result.mu_final, first.result.mu_final)

    def test_byte_budget_gates_storage(self):
        # A 1-byte budget stores nothing, so the second submit recomputes.
        request = _request(seed=11)

        async def go():
            scheduler = BatchScheduler(window_s=0.01, response_cache_bytes=1)
            try:
                await scheduler.submit(request)
                return (
                    await scheduler.submit(request),
                    scheduler.metrics.render_json(),
                )
            finally:
                scheduler.close()

        second, metrics = run(go())
        assert not second.cached
        assert metrics["batches_total"] == 2
        assert metrics["response_cache_entries"] == 0

    def test_different_identity_misses(self):
        # Same topology/config, different seed -> different work_key.
        async def go():
            scheduler = BatchScheduler(window_s=0.01)
            try:
                await scheduler.submit(_request(seed=21))
                return (
                    await scheduler.submit(_request(seed=22)),
                    scheduler.metrics.render_json(),
                )
            finally:
                scheduler.close()

        served, metrics = run(go())
        assert not served.cached
        assert metrics["response_cache_hits_total"] == 0
        assert metrics["batches_total"] == 2
