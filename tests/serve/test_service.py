"""Front-end behavior: parsing, ops, HTTP transport, stdio, hooks."""

import asyncio
import json

import numpy as np
import pytest

from repro.api.pipeline import Pipeline
from repro.api.registry import REGISTRY, VERIFY
from repro.api.stages import StageContext
from repro.api.topology import Topology
from repro.errors import MappingError, ReproError
from repro.graphs import generators as gen
from repro.serve.loadgen import http_request_json
from repro.serve.scheduler import BatchScheduler
from repro.serve.service import (
    ADMISSION_HOOK,
    MappingService,
    ServeSettings,
    ServerThread,
    parse_config,
    parse_request,
    register_admission_hook,
    serve_stdio,
)


@pytest.fixture
def service():
    scheduler = BatchScheduler(window_s=0.01, max_batch=8)
    svc = MappingService(scheduler)
    yield svc
    scheduler.close()
    register_admission_hook(None)


def _map_body(seed=0, **extra):
    return {
        "topology": "grid4x4",
        "graph": {"kind": "generate", "instance": "p2p-Gnutella", "seed": seed},
        "seed": seed,
        "config": {"nh": 1},
        **extra,
    }


class TestParsing:
    def test_unknown_request_key(self):
        with pytest.raises(ReproError, match="unknown request keys"):
            parse_request({"topology": "grid4x4", "bogus": 1})

    def test_missing_topology(self):
        with pytest.raises(ReproError, match="topology"):
            parse_request({"graph": {}})

    def test_unknown_config_key(self):
        with pytest.raises(ReproError, match="unknown config keys"):
            parse_request({"topology": "grid4x4", "config": {"zzz": 1}})

    def test_bad_deadline(self):
        with pytest.raises(ReproError, match="deadline"):
            parse_request({"topology": "grid4x4", "deadline_s": -1})

    def test_enhance_requires_mu(self):
        with pytest.raises(ReproError, match="mu"):
            parse_request({"topology": "grid4x4"}, require_mu=True)

    def test_unknown_graph_instance(self):
        with pytest.raises(ReproError, match="unknown instance"):
            parse_request(
                {"topology": "grid4x4", "graph": {"instance": "nope"}}
            )

    def test_size_limit_applies_at_parse_time(self):
        with pytest.raises(ReproError, match="admits at most"):
            parse_request(_map_body(), max_graph_n=50)  # spec n_max=192

    def test_config_spellings(self):
        cfg = parse_config({"case": "c3", "nh": 4, "strategy": "kl"})
        assert cfg.initial_mapping == "c3"
        assert cfg.timer.n_hierarchies == 4
        assert cfg.timer.swap_strategy == "kl"
        assert cfg.pre_verify == (ADMISSION_HOOK,)
        assert "mapping-valid" in cfg.post_verify


class TestOps:
    def test_map_round_trip_matches_direct(self, service):
        body = _map_body(seed=5)
        status, reply, _ = asyncio.run(service.handle("map", body))
        assert status == 200 and reply["ok"]
        request = parse_request(body)
        direct = Pipeline(request.topology, request.config).run(
            request.graph.build(), seed=request.seed
        )
        assert reply["mu"] == [int(x) for x in direct.mu_final]
        assert reply["identity_hash"] == direct.identity_hash
        assert reply["batch"]["size"] == 1

    def test_enhance_round_trip(self, service):
        status, mapped, _ = asyncio.run(service.handle("map", _map_body(seed=1)))
        assert status == 200
        body = _map_body(seed=1, mu=mapped["mu"])
        status, reply, _ = asyncio.run(service.handle("enhance", body))
        assert status == 200 and reply["ok"]
        assert reply["metrics"]["coco_after"] <= reply["metrics"]["coco_before"]
        # block sizes preserved (the balance contract TIMER keeps)
        assert sorted(np.bincount(reply["mu"])) == sorted(np.bincount(mapped["mu"]))

    def test_unknown_topology_is_400(self, service):
        status, reply, _ = asyncio.run(
            service.handle("map", _map_body() | {"topology": "nope"})
        )
        assert status == 400 and reply["error"] == "bad_request"

    def test_unknown_op_is_404(self, service):
        status, reply, _ = asyncio.run(service.handle("frob", {}))
        assert status == 404

    def test_healthz(self, service):
        status, reply, _ = asyncio.run(service.handle("healthz", {}))
        assert status == 200
        assert reply["status"] == "ok"
        assert "grid4x4" in reply["topologies"]
        assert "sessions" in reply["cache"]

    def test_metrics_formats(self, service):
        asyncio.run(service.handle("map", _map_body()))
        status, text, _ = asyncio.run(service.handle("metrics", {}))
        assert status == 200 and isinstance(text, str)
        assert "repro_serve_requests_total 1" in text
        assert "repro_serve_labelings_computed" in text
        status, data, _ = asyncio.run(
            service.handle("metrics", {"format": "json"})
        )
        assert data["requests_total"] == 1
        assert data["labelings_computed"] == 1

    def test_batch_op_shares_one_window(self, service):
        payload = {
            "requests": [
                {**_map_body(seed=0), "id": "a"},
                {**_map_body(seed=0), "id": "b"},
                {**_map_body(seed=1), "id": "c"},
            ]
        }
        status, reply, _ = asyncio.run(service.handle("batch", payload))
        assert status == 200 and reply["ok"]
        by_id = {r["id"]: r for r in reply["results"]}
        assert set(by_id) == {"a", "b", "c"}
        assert all(r["status_code"] == 200 for r in reply["results"])
        assert by_id["a"]["batch"]["size"] == 3
        assert by_id["a"]["mu"] == by_id["b"]["mu"]  # coalesced pair

    def test_batch_op_needs_requests(self, service):
        status, reply, _ = asyncio.run(service.handle("batch", {}))
        assert status == 400

    def test_batch_op_rejects_non_object_items(self, service):
        status, reply, _ = asyncio.run(
            service.handle("batch", {"requests": ["x", _map_body()]})
        )
        assert status == 400
        assert "JSON object" in reply["message"]

    def test_batch_item_status_survives_healthz_body(self, service):
        status, reply, _ = asyncio.run(
            service.handle("batch", {"requests": [{"op": "healthz"}]})
        )
        item = reply["results"][0]
        assert item["status_code"] == 200
        assert item["status"] == "ok"  # healthz's own field intact


class TestAdmissionHook:
    def test_hook_registered_and_enforces_limit(self):
        scheduler = BatchScheduler(window_s=0.01)
        try:
            svc = MappingService(scheduler, max_graph_n=10)
            assert svc.admission_hook == f"{ADMISSION_HOOK}-10"
            hook = REGISTRY.get(VERIFY, svc.admission_hook)
            ctx = StageContext(
                ga=gen.grid(4, 4), topology=Topology.from_name("grid4x4")
            )
            with pytest.raises(MappingError, match="admits at most"):
                hook(ctx)
        finally:
            scheduler.close()
            register_admission_hook(None)

    def test_two_services_keep_distinct_limits(self):
        """The hook name encodes the limit: no cross-service clobbering."""
        s1, s2 = BatchScheduler(window_s=0.01), BatchScheduler(window_s=0.01)
        try:
            a = MappingService(s1, max_graph_n=10)
            b = MappingService(s2)  # no limit
            assert a.admission_hook != b.admission_hook
            ctx = StageContext(
                ga=gen.grid(4, 4), topology=Topology.from_name("grid4x4")
            )
            REGISTRY.get(VERIFY, b.admission_hook)(ctx)  # no-op
            with pytest.raises(MappingError):
                REGISTRY.get(VERIFY, a.admission_hook)(ctx)  # still 10
        finally:
            s1.close()
            s2.close()
            register_admission_hook(None)

    def test_oversized_request_rejected_before_compute(self):
        scheduler = BatchScheduler(window_s=0.01)
        try:
            svc = MappingService(scheduler, max_graph_n=50)
            status, reply, _ = asyncio.run(svc.handle("map", _map_body()))
            assert status == 400
            assert "admits at most" in reply["message"]
            assert scheduler.metrics.render_json()["requests_total"] == 0
        finally:
            scheduler.close()
            register_admission_hook(None)


class TestHTTP:
    @pytest.fixture(scope="class")
    def server(self):
        with ServerThread(
            ServeSettings(port=0, window_ms=10, max_batch=8)
        ) as srv:
            yield srv
        register_admission_hook(None)

    def _call(self, server, method, path, body=None):
        return asyncio.run(
            http_request_json(server.host, server.port, method, path, body)
        )

    def test_map_over_http(self, server):
        status, reply = self._call(server, "POST", "/map", _map_body(seed=2))
        assert status == 200 and reply["ok"]
        assert len(reply["mu"]) > 0

    def test_healthz_and_metrics(self, server):
        status, reply = self._call(server, "GET", "/healthz")
        assert status == 200 and reply["status"] == "ok"
        status, text = self._call(server, "GET", "/metrics")
        assert status == 200 and "repro_serve_uptime_seconds" in text

    def test_unknown_path_404(self, server):
        status, reply = self._call(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_405(self, server):
        status, reply = self._call(server, "GET", "/map")
        assert status == 405

    def test_invalid_json_400(self, server):
        async def go():
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(
                b"POST /map HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                b"Content-Length: 9\r\n\r\nnot json!"
            )
            await writer.drain()
            data = await reader.read()
            writer.close()
            return data

        raw = asyncio.run(go())
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"invalid JSON" in raw

    def test_oversized_headers_rejected(self, server):
        # The server may reset the connection while the client is still
        # writing (it responds 400 and closes at the 64KB cap, mid-way
        # through our ~96KB of headers).  Both observations -- a 400
        # status line or a connection reset before one could be read --
        # prove the rejection; which one the client sees is a TCP race.
        async def go():
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            try:
                writer.write(b"GET /healthz HTTP/1.1\r\n")
                filler = b"X-Filler: " + b"a" * 8000 + b"\r\n"
                for _ in range(12):  # ~96KB of headers > the 64KB cap
                    writer.write(filler)
                await writer.drain()
                return await reader.read()
            except ConnectionResetError:
                return None
            finally:
                writer.close()

        raw = asyncio.run(go())
        assert raw is None or b"400" in raw.split(b"\r\n", 1)[0]

    def test_keep_alive_two_requests_one_connection(self, server):
        async def go():
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            req = (b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            out = []
            for _ in range(2):
                writer.write(req)
                await writer.drain()
                status_line = await reader.readline()
                out.append(status_line)
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length"):
                        length = int(line.split(b":")[1])
                await reader.readexactly(length)
            writer.close()
            return out

        lines = asyncio.run(go())
        assert all(b"200" in line for line in lines)


class TestStdio:
    def test_json_lines_round_trip(self, service):
        lines = [
            json.dumps({"op": "healthz", "id": 1}),
            json.dumps({"op": "map", "id": 2, **_map_body(seed=3)}),
            "not json",
            "5",  # valid JSON, not an object: must not kill the loop
            json.dumps({"op": "metrics", "format": "json", "id": 4}),
        ]
        out: list[str] = []

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(("\n".join(lines) + "\n").encode())
            reader.feed_eof()
            await serve_stdio(service, reader, out.append)

        asyncio.run(go())
        replies = [json.loads(line) for line in out]
        assert len(replies) == 5
        # Requests are pipelined, so responses are matched by echoed id,
        # not by position (only the malformed-line errors, answered
        # inline by the read loop, keep their relative input order).
        by_id = {r["id"]: r for r in replies if "id" in r}
        errors = [r for r in replies if "id" not in r]
        assert by_id[1]["status_code"] == 200 and by_id[1]["status"] == "ok"
        assert isinstance(by_id[2]["mu"], list)
        assert [e["error"] for e in errors] == ["bad_request", "bad_request"]
        # The map line precedes the metrics line, and dispatch tasks
        # start in admission order, so the metrics snapshot sees it.
        assert by_id[4]["requests_total"] == 1

    def test_in_flight_pipelining_returns_out_of_order(self, service):
        # A map line parks in the 10ms batching window; a healthz line
        # sent right behind it must NOT wait for it -- its response
        # overtakes the map's.  This is the contract that makes many
        # back-to-back map lines share one batching window.
        lines = [
            json.dumps({"op": "map", "id": "slow", **_map_body(seed=11)}),
            json.dumps({"op": "healthz", "id": "quick"}),
        ]
        out: list[str] = []

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(("\n".join(lines) + "\n").encode())
            reader.feed_eof()
            await serve_stdio(service, reader, out.append)

        asyncio.run(go())
        replies = [json.loads(line) for line in out]
        assert [r["id"] for r in replies] == ["quick", "slow"]
        assert all(r["status_code"] == 200 for r in replies)
        assert isinstance(replies[1]["mu"], list)

    def test_concurrent_map_lines_share_a_batch(self, service):
        # Two identical-config map lines admitted within one window are
        # batched together -- the whole point of pipelining stdio.
        lines = [
            json.dumps({"op": "map", "id": i, **_map_body(seed=i)})
            for i in (1, 2)
        ]
        out: list[str] = []

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(("\n".join(lines) + "\n").encode())
            reader.feed_eof()
            await serve_stdio(service, reader, out.append)

        asyncio.run(go())
        replies = [json.loads(line) for line in out]
        assert {r["id"] for r in replies} == {1, 2}
        assert all(r["batch"]["size"] == 2 for r in replies)

    def test_oversized_line_answers_error_and_continues(self, service):
        # A line beyond the reader's limit must not kill the session:
        # structured error out, and the *next* line is still served.
        lines = [
            "x" * 4096,  # oversized garbage (no JSON needed)
            json.dumps({"op": "healthz", "id": 9}),
        ]
        out: list[str] = []

        async def go():
            reader = asyncio.StreamReader(limit=256)
            reader.feed_data(("\n".join(lines) + "\n").encode())
            reader.feed_eof()
            await serve_stdio(service, reader, out.append)

        asyncio.run(go())
        replies = [json.loads(line) for line in out]
        assert replies[0]["error"] == "bad_request"
        assert "size limit" in replies[0]["message"]
        assert replies[1]["status_code"] == 200 and replies[1]["id"] == 9

    def test_oversized_final_line_without_newline(self, service):
        out: list[str] = []

        async def go():
            reader = asyncio.StreamReader(limit=256)
            reader.feed_data(b"y" * 4096)  # torn stream, no terminator
            reader.feed_eof()
            await serve_stdio(service, reader, out.append)

        asyncio.run(go())
        assert json.loads(out[0])["error"] == "bad_request"


class TestFailureStatusMapping:
    def test_breaker_open_maps_to_503_with_retry_after(self, service):
        body = _map_body(seed=2)
        gkey = parse_request(body).group_key()
        breaker = service.scheduler.breaker_for(gkey)
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        status, reply, headers = asyncio.run(service.handle("map", body))
        assert status == 503
        assert reply["error"] == "circuit_open"
        assert float(headers["Retry-After"]) > 0

    def test_transient_exhaustion_maps_to_503(self, service):
        from repro.errors import TransientError
        from repro.serve.retry import RetryPolicy

        service.scheduler.retry = RetryPolicy(max_attempts=2, base_delay=0.001)
        body = _map_body(seed=2)
        pipe = service.scheduler.pipeline_for(parse_request(body))

        def explode(*_a, **_k):
            raise TransientError("injected")

        pipe.run_batch = explode
        status, reply, headers = asyncio.run(service.handle("map", body))
        assert status == 503 and reply["error"] == "transient"
        assert float(headers["Retry-After"]) > 0

    def test_permanent_failure_maps_to_500(self, service):
        from repro.errors import PermanentError

        body = _map_body(seed=2)
        pipe = service.scheduler.pipeline_for(parse_request(body))

        def explode(*_a, **_k):
            raise PermanentError("unrecoverable")

        pipe.run_batch = explode
        status, reply, _ = asyncio.run(service.handle("map", body))
        assert status == 500 and reply["error"] == "permanent"

    def test_allow_degraded_parses_and_flags_response(self, service):
        request = parse_request(_map_body(allow_degraded=True))
        assert request.allow_degraded
        # a healthy group serves the full result: no degraded flag leaks
        status, reply, _ = asyncio.run(
            service.handle("map", _map_body(seed=3, allow_degraded=True))
        )
        assert status == 200 and "degraded" not in reply

    def test_repeat_response_carries_cached_flag(self, service):
        # A replayed identity is answered by the response cache before
        # the breaker is consulted: full fidelity, flagged "cached",
        # never "degraded".
        body = _map_body(seed=6, allow_degraded=True)
        status, first, _ = asyncio.run(service.handle("map", body))
        assert status == 200 and "cached" not in first
        gkey = parse_request(body).group_key()
        breaker = service.scheduler.breaker_for(gkey)
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        status, reply, _ = asyncio.run(service.handle("map", body))
        assert status == 200
        assert reply["cached"] is True and "degraded" not in reply
        assert reply["mu"] == first["mu"]

    def test_healthz_exposes_breakers_and_faults(self, service):
        status, reply, _ = asyncio.run(service.handle("healthz", {}))
        assert status == 200
        assert reply["faults_active"] is False
        assert isinstance(reply["breakers"], dict)
