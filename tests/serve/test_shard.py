"""Sharded serving: router stability, routed byte identity, failover."""

import asyncio
import hashlib
import socket

import pytest

from repro.api.pipeline import Pipeline
from repro.errors import ConfigurationError
from repro.serve.loadgen import LoadProfile, http_request_json, run_load
from repro.serve.service import ServeSettings, ServerThread, parse_request
from repro.serve.shard import (
    FrontendThread,
    ShardCluster,
    ShardFrontend,
    ShardRouter,
)


def _body(seed=0, topology="grid4x4", **extra):
    return {
        "topology": topology,
        "graph": {"kind": "generate", "instance": "p2p-Gnutella", "seed": seed},
        "seed": seed,
        "config": {"nh": 1},
        **extra,
    }


def _direct(body):
    request = parse_request(body)
    return Pipeline(request.topology, request.config).run(
        request.graph.build(), seed=request.seed
    )


def _post(front, path, body):
    return asyncio.run(
        http_request_json(front.host, front.port, "POST", path, body)
    )


def _get(front, path):
    return asyncio.run(http_request_json(front.host, front.port, "GET", path))


def _dead_port() -> int:
    """A port nothing listens on (bound once, then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestShardRouter:
    def test_route_is_the_documented_pure_function(self):
        # Reproducing the route from sha256 alone is the cross-process
        # determinism proof: no state, no RNG, no process identity.
        router = ShardRouter(["shard0", "shard1", "shard2"])
        for key in ("grid4x4", "hq4", "fattree4x3", "", "Ünïcode"):
            expected = max(
                router.shards,
                key=lambda s: (
                    int.from_bytes(
                        hashlib.sha256(f"{s}|{key}".encode()).digest()[:8],
                        "big",
                    ),
                    s,
                ),
            )
            assert router.route(key) == expected
            assert router.ranked(key)[0] == router.route(key)
            assert sorted(router.ranked(key)) == sorted(router.shards)

    def test_construction_order_is_irrelevant(self):
        keys = [f"key{i}" for i in range(300)]
        a = ShardRouter(["s0", "s1", "s2", "s3"])
        b = ShardRouter(["s3", "s1", "s0", "s2"])
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_adding_a_shard_moves_about_one_in_n_keys(self):
        keys = [f"topo-{i}" for i in range(1000)]
        before = ShardRouter([f"s{i}" for i in range(4)])
        after = ShardRouter([f"s{i}" for i in range(5)])
        moved = [k for k in keys if before.route(k) != after.route(k)]
        # every moved key moves *to* the new shard, never between old ones
        assert moved and all(after.route(k) == "s4" for k in moved)
        assert len(moved) <= 1.5 * len(keys) / 5

    def test_removing_a_shard_moves_only_its_keys(self):
        keys = [f"topo-{i}" for i in range(1000)]
        full = ShardRouter(["s0", "s1", "s2", "s3"])
        reduced = ShardRouter(["s0", "s1", "s3"])
        orphans = 0
        for key in keys:
            owner = full.route(key)
            if owner == "s2":
                orphans += 1
                assert reduced.route(key) != "s2"
            else:
                assert reduced.route(key) == owner  # exactness, not ~
        assert orphans > 0

    def test_invalid_shard_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter([])
        with pytest.raises(ConfigurationError):
            ShardRouter(["a", "a"])


class TestFrontendRouting:
    """Front end over two in-process backend servers (no worker procs)."""

    def _settings(self):
        return ServeSettings(port=0, window_ms=5.0)

    def test_served_through_frontend_matches_direct_run(self):
        with ServerThread(self._settings()) as a, \
                ServerThread(self._settings()) as b:
            backends = {"shard0": (a.host, a.port), "shard1": (b.host, b.port)}
            with FrontendThread(backends) as front:
                # grid4x4 routes to shard0, hq4 to shard1 (rendezvous)
                for topology in ("grid4x4", "hq4"):
                    body = _body(seed=5, topology=topology)
                    status, reply = _post(front, "/map", body)
                    assert status == 200 and reply["ok"]
                    direct = _direct(body)
                    assert reply["mu"] == [int(x) for x in direct.mu_final]
                    assert reply["identity_hash"] == direct.identity_hash

    def test_repeat_is_answered_by_the_owners_response_cache(self):
        with ServerThread(self._settings()) as a, \
                ServerThread(self._settings()) as b:
            backends = {"shard0": (a.host, a.port), "shard1": (b.host, b.port)}
            with FrontendThread(backends) as front:
                body = _body(seed=7)
                status, first = _post(front, "/map", body)
                status2, again = _post(front, "/map", body)
                assert status == status2 == 200
                assert "cached" not in first and again["cached"] is True
                assert again["mu"] == first["mu"]

    def test_requests_pin_to_their_shard(self):
        with ServerThread(self._settings()) as a, \
                ServerThread(self._settings()) as b:
            backends = {"shard0": (a.host, a.port), "shard1": (b.host, b.port)}
            router = ShardRouter(backends)
            topologies = ["grid4x4", "hq4", "dragonfly4x2", "grid4x4"]
            expected = {"shard0": 0, "shard1": 0}
            with FrontendThread(backends) as front:
                for seed, topology in enumerate(topologies):
                    status, _reply = _post(
                        front, "/map", _body(seed=seed, topology=topology)
                    )
                    assert status == 200
                    expected[router.route(topology)] += 1
                status, merged = _get(front, "/metrics?format=json")
            assert status == 200
            # aggregate view sums the per-shard counters
            assert merged["requests_total"] == len(topologies)
            routed = merged["frontend"]["shard_requests_total"]
            for name, count in expected.items():
                assert routed.get(name, 0) == count
            # and each backend really served only its routed share
            for name, srv in (("shard0", a), ("shard1", b)):
                status, own = asyncio.run(
                    http_request_json(
                        srv.host, srv.port, "GET", "/metrics?format=json"
                    )
                )
                assert own["requests_total"] == expected[name]

    def test_batch_splits_by_shard_and_reassembles_in_order(self):
        with ServerThread(self._settings()) as a, \
                ServerThread(self._settings()) as b:
            backends = {"shard0": (a.host, a.port), "shard1": (b.host, b.port)}
            with FrontendThread(backends) as front:
                items = [
                    _body(seed=i, topology=topo, id=i)
                    for i, topo in enumerate(
                        ["grid4x4", "hq4", "grid4x4", "hq4"]
                    )
                ]
                status, reply = _post(front, "/batch", {"requests": items})
                assert status == 200 and reply["ok"]
                results = reply["results"]
                assert [r["id"] for r in results] == [0, 1, 2, 3]
                for item, res in zip(items, results):
                    assert res["status_code"] == 200
                    direct = _direct({k: v for k, v in item.items() if k != "id"})
                    assert res["mu"] == [int(x) for x in direct.mu_final]

    def test_failover_serves_identical_bytes_from_next_shard(self):
        # grid4x4's owner (shard0) is a dead port: the front end must
        # fail over to shard1 and the result must still be exact.
        with ServerThread(self._settings()) as live:
            backends = {
                "shard0": ("127.0.0.1", _dead_port()),
                "shard1": (live.host, live.port),
            }
            assert ShardRouter(backends).route("grid4x4") == "shard0"
            with FrontendThread(
                backends, fail_threshold=1, down_cooldown_s=30.0
            ) as front:
                body = _body(seed=9)
                status, reply = _post(front, "/map", body)
                assert status == 200 and reply["ok"]
                direct = _direct(body)
                assert reply["mu"] == [int(x) for x in direct.mu_final]
                assert reply["identity_hash"] == direct.identity_hash
                assert front.frontend.down_shards() == ["shard0"]
                # marked down: the next request skips the corpse first
                status, _ = _post(front, "/map", _body(seed=10))
                assert status == 200
                status, health = _get(front, "/healthz")
                assert status == 200  # one live shard can serve every key
                assert health["status"] == "ok"
                assert health["shards_up"] == 1
                assert health["shards_down"] == ["shard0"]
                status, metrics = _get(front, "/metrics?format=json")
                failovers = metrics["frontend"]["shard_failovers_total"]
                assert failovers["shard0"] >= 1

    def test_every_shard_down_is_a_transient_503(self):
        backends = {
            "shard0": ("127.0.0.1", _dead_port()),
            "shard1": ("127.0.0.1", _dead_port()),
        }
        with FrontendThread(backends, fail_threshold=1) as front:
            status, reply = _post(front, "/map", _body())
            assert status == 503
            assert reply["error"] == "transient"
            status, health = _get(front, "/healthz")
            assert status == 503 and health["shards_up"] == 0


class TestShardCluster:
    def test_cluster_serves_load_and_survives_a_killed_shard(self):
        settings = ServeSettings(port=0, window_ms=5.0)
        with ShardCluster(settings, shards=2) as cluster:
            assert sorted(cluster.backends) == ["shard0", "shard1"]
            with FrontendThread(
                cluster.backends, fail_threshold=1, down_cooldown_s=10.0
            ) as front:
                profile = LoadProfile(
                    scenario="smoke",
                    requests=12,
                    rate=300.0,
                    nh=1,
                    seed_pool=1,
                    repeat_fraction=0.4,
                )
                report = asyncio.run(run_load(profile, url=front.url))
                # zero lost requests across the sharded front end
                assert report.ok == report.requests == 12
                # grid4x4's owner dies; the survivor serves exact bytes
                cluster.kill("shard0")
                body = _body(seed=3)
                status, reply = _post(front, "/map", body)
                assert status == 200 and reply["ok"]
                direct = _direct(body)
                assert reply["mu"] == [int(x) for x in direct.mu_final]
                status, health = _get(front, "/healthz")
                assert status == 200 and health["shards_up"] == 1

    def test_unknown_kill_target_rejected(self):
        settings = ServeSettings(port=0)
        with ShardCluster(settings, shards=1) as cluster:
            with pytest.raises(ConfigurationError):
                cluster.kill("nope")

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardCluster(ServeSettings(), shards=0)

    def test_frontend_duck_types_the_service_interface(self):
        # ShardFrontend slots into handle_http_connection unchanged, so
        # it must expose the same handle()/record_response() surface.
        frontend = ShardFrontend({"s0": ("127.0.0.1", _dead_port())})
        status, body, _headers = asyncio.run(frontend.handle("frob", {}))
        assert status == 404 and body["error"] == "not_found"
        frontend.record_response(404)
