"""End-to-end tracing through the serve tier.

The tentpole contract: one ``/map`` against a 2-shard cluster yields a
single trace whose tree walks frontend -> shard worker -> scheduler ->
pipeline stages, exposed via ``/debug/traces``, with span ids that are
byte-identical when the same request is replayed against a fresh
cluster.
"""

import asyncio

from repro.obs.trace import TraceBuffer, Tracer, tree_signature
from repro.serve.loadgen import LoadProfile, http_request_json, plan_requests
from repro.serve.scheduler import BatchScheduler
from repro.serve.service import MappingService, ServeSettings
from repro.serve.shard import FrontendThread, ShardCluster


def _map_body(seed=0, **extra):
    return {
        "topology": "grid4x4",
        "graph": {"kind": "generate", "instance": "p2p-Gnutella", "seed": seed},
        "seed": seed,
        "config": {"nh": 1},
        **extra,
    }


def _service(**scheduler_kwargs):
    tracer = Tracer(process="serve", buffer=TraceBuffer())
    scheduler = BatchScheduler(
        window_s=0.01, max_batch=8, tracer=tracer, **scheduler_kwargs
    )
    return MappingService(scheduler), scheduler


def _names(spans):
    return {s["name"] for s in spans}


class TestServiceTracing:
    def test_map_response_carries_trace_id_and_tree_is_complete(self):
        service, scheduler = _service()
        try:
            status, body, _ = asyncio.run(service.handle("map", _map_body()))
            assert status == 200 and body["ok"]
            trace_id = body["trace_id"]
            spans = service.tracer.buffer.get(trace_id)
            assert _names(spans) >= {
                "handle", "cache_lookup", "queue_wait", "compute",
                "pipeline", "stage:partition", "stage:initial_mapping",
                "stage:enhance",
            }
            # every non-root span parents inside the trace
            ids = {s["span_id"] for s in spans}
            handle = next(s for s in spans if s["name"] == "handle")
            for span in spans:
                if span is not handle:
                    assert span["parent_id"] in ids
        finally:
            scheduler.close()

    def test_debug_traces_op_exposes_the_snapshot(self):
        service, scheduler = _service()
        try:
            asyncio.run(service.handle("map", _map_body()))
            status, snap, _ = asyncio.run(
                service.handle("traces", {"recent": "5", "slowest": "2"})
            )
            assert status == 200
            assert snap["process"] == "serve"
            assert snap["buffer"]["traces"] == 1
            (entry,) = snap["recent"]
            assert entry["tree"][0]["name"] == "handle"
        finally:
            scheduler.close()

    def test_sample_false_hint_opts_out_of_retention(self):
        service, scheduler = _service()
        try:
            status, body, _ = asyncio.run(
                service.handle("map", _map_body(trace={"sample": False}))
            )
            assert status == 200 and body["ok"]
            assert "trace_id" not in body
            assert len(service.tracer.buffer) == 0
        finally:
            scheduler.close()

    def test_cached_replay_traces_the_cache_hit(self):
        service, scheduler = _service()
        try:
            asyncio.run(service.handle("map", _map_body()))
            status, body, _ = asyncio.run(service.handle("map", _map_body()))
            assert status == 200 and body["cached"]
            spans = service.tracer.buffer.get(body["trace_id"])
            hits = [
                s for s in spans
                if s["name"] == "cache_lookup" and s["attrs"].get("hit")
            ]
            assert hits
        finally:
            scheduler.close()

    def test_quality_gauges_and_stage_histograms_in_metrics(self):
        service, scheduler = _service()
        try:
            asyncio.run(service.handle("map", _map_body()))
            out = scheduler.metrics.render_json()
            assert out["quality_cut_edges"]["grid4x4"] > 0
            assert "grid4x4" in out["quality_objective"]
            for stage in ("partition", "initial_mapping", "enhance"):
                assert out[f"stage_seconds_{stage}"]["count"] >= 1
        finally:
            scheduler.close()

    def test_disabled_tracer_serves_without_spans(self):
        tracer = Tracer(process="serve", buffer=TraceBuffer(), enabled=False)
        scheduler = BatchScheduler(window_s=0.01, max_batch=8, tracer=tracer)
        service = MappingService(scheduler)
        try:
            status, body, _ = asyncio.run(service.handle("map", _map_body()))
            assert status == 200 and body["ok"]
            assert "trace_id" not in body
            assert len(tracer.buffer) == 0
        finally:
            scheduler.close()


class TestPoolSpanShipping:
    def test_pool_worker_spans_merge_into_the_scheduler_buffer(self):
        service, scheduler = _service(workers=1)
        try:
            status, body, _ = asyncio.run(service.handle("map", _map_body()))
            assert status == 200 and body["ok"]
            spans = service.tracer.buffer.get(body["trace_id"])
            pool_spans = [s for s in spans if s["process"] == "pool"]
            assert _names(pool_spans) >= {
                "pool_execute", "pipeline", "stage:partition",
            }
            # the pool subtree parents under the scheduler's compute span
            compute = next(s for s in spans if s["name"] == "compute")
            execute = next(s for s in spans if s["name"] == "pool_execute")
            assert execute["parent_id"] == compute["span_id"]
        finally:
            scheduler.close()


class TestProfileHook:
    def test_profile_attaches_hotspot_frames_to_the_compute_span(self):
        service, scheduler = _service(profile=True, profile_top=5)
        try:
            status, body, _ = asyncio.run(service.handle("map", _map_body()))
            assert status == 200 and body["ok"]
            spans = service.tracer.buffer.get(body["trace_id"])
            compute = next(s for s in spans if s["name"] == "compute")
            frames = compute["attrs"]["profile"]
            assert frames and len(frames) <= 5
            assert all("frame" in f and "cumtime" in f for f in frames)
        finally:
            scheduler.close()


class TestLoadgenTraceSample:
    def test_sampled_fraction_is_deterministic(self):
        profile = LoadProfile(
            scenario="smoke", requests=40, rate=200.0, trace_sample=0.25
        )
        first = plan_requests(profile)
        second = plan_requests(profile)
        assert [b for _t, b in first] == [b for _t, b in second]
        opted_out = sum(
            1 for _t, b in first if b.get("trace") == {"sample": False}
        )
        assert 0 < opted_out < 40

    def test_sample_one_sends_no_hints_and_matches_plain_plan(self):
        plain = plan_requests(LoadProfile(scenario="smoke", requests=20))
        sampled = plan_requests(
            LoadProfile(scenario="smoke", requests=20, trace_sample=1.0)
        )
        assert plain == sampled
        assert all("trace" not in b for _t, b in plain)


class TestClusterTracing:
    """The acceptance walk: 2 real shard processes behind the front end."""

    def _run_cluster_once(self, body):
        settings = ServeSettings(window_ms=5, jobs=1)
        with ShardCluster(settings, shards=2) as cluster:
            with FrontendThread(cluster.backends) as front:
                status, reply = asyncio.run(
                    http_request_json(
                        front.host, front.port, "POST", "/map", body
                    )
                )
                assert status == 200 and reply["ok"], reply
                status, snap = asyncio.run(
                    http_request_json(
                        front.host, front.port, "GET", "/debug/traces"
                    )
                )
                assert status == 200
                entry = next(
                    e for e in snap["recent"]
                    if e["trace_id"] == reply["trace_id"]
                )
                return reply, snap, entry

    def test_one_map_yields_one_cross_process_trace_tree(self):
        reply, snap, entry = self._run_cluster_once(_map_body())
        assert snap["process"] == "aggregate"
        assert snap["buffer"]["sources"] == 3  # frontend + both shards
        spans = entry["spans"]
        processes = {s["process"] for s in spans}
        assert "frontend" in processes
        assert processes & {"shard0", "shard1"}
        # one tree: the frontend root, the shard handle under it, the
        # pipeline stages under the shard's compute span
        (root,) = entry["tree"]
        assert root["name"] == "frontend" and root["process"] == "frontend"
        child_names = {c["name"] for c in root["children"]}
        assert {"forward", "handle"} <= child_names
        handle = next(c for c in root["children"] if c["name"] == "handle")
        assert handle["process"].startswith("shard")
        flat = _names(spans)
        assert {"pipeline", "stage:partition", "stage:initial_mapping",
                "stage:enhance"} <= flat

    def test_span_trees_are_byte_identical_across_cluster_reruns(self):
        body = _map_body(seed=3)
        _reply1, _snap1, entry1 = self._run_cluster_once(body)
        _reply2, _snap2, entry2 = self._run_cluster_once(body)
        assert entry1["trace_id"] == entry2["trace_id"]
        assert tree_signature(entry1["spans"]) == tree_signature(
            entry2["spans"]
        )
