"""Unit and property tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    MAX_LABEL_BITS,
    bit_length_for,
    bits_to_int,
    hamming,
    int_to_bits,
    mask_of_width,
    permute_bits,
    popcount,
    unpermute_bits,
)


class TestPopcountHamming:
    def test_popcount_basic(self):
        assert popcount(np.asarray([0, 1, 3, 255], dtype=np.int64)).tolist() == [0, 1, 2, 8]

    def test_hamming_symmetry(self):
        a = np.asarray([0b1010, 0b1111], dtype=np.int64)
        b = np.asarray([0b0101, 0b1111], dtype=np.int64)
        assert hamming(a, b).tolist() == [4, 0]
        assert hamming(b, a).tolist() == [4, 0]

    def test_hamming_broadcast(self):
        a = np.asarray([[0b01], [0b10]], dtype=np.int64)
        b = np.asarray([0b00, 0b11], dtype=np.int64)
        assert hamming(a, b).tolist() == [[1, 1], [1, 1]]


class TestBitLength:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)]
    )
    def test_values(self, n, expected):
        assert bit_length_for(n) == expected

    @given(st.integers(min_value=1, max_value=10**9))
    def test_covers_range(self, n):
        width = bit_length_for(n)
        assert (1 << width) >= n
        if n > 1:
            assert (1 << (width - 1)) < n


class TestMask:
    def test_zero_width(self):
        assert mask_of_width(0) == 0

    def test_full(self):
        assert mask_of_width(3) == 0b111

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mask_of_width(-1)
        with pytest.raises(ValueError):
            mask_of_width(MAX_LABEL_BITS + 1)


class TestPermuteBits:
    def test_identity(self):
        labels = np.asarray([0b101, 0b010, 0b111], dtype=np.int64)
        perm = np.arange(3)
        assert np.array_equal(permute_bits(labels, perm), labels)

    def test_reverse(self):
        labels = np.asarray([0b001], dtype=np.int64)
        perm = np.asarray([2, 1, 0])
        # new bit 0 = old bit 2 (=0), new bit 2 = old bit 0 (=1)
        assert permute_bits(labels, perm).tolist() == [0b100]

    def test_unpermute_inverts(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2**20, size=50).astype(np.int64)
        perm = rng.permutation(20)
        assert np.array_equal(unpermute_bits(permute_bits(labels, perm), perm), labels)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0))
    def test_popcount_invariant(self, width, seed):
        rng = np.random.default_rng(seed % 2**32)
        labels = rng.integers(0, 1 << width, size=10).astype(np.int64)
        perm = rng.permutation(width)
        permuted = permute_bits(labels, perm)
        assert np.array_equal(popcount(permuted), popcount(labels))


class TestBitListConversions:
    def test_round_trip(self):
        assert bits_to_int(int_to_bits(13, 6)) == 13

    def test_msb_first(self):
        assert bits_to_int([1, 0]) == 2
        assert int_to_bits(2, 2) == [1, 0]

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([2])

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(4, 2)


class TestBitwiseCountShim:
    """The numpy < 2.0 compatibility shim must agree with the native op."""

    def test_fallback_matches_native_on_samples(self):
        from repro.utils.bitops import _bitwise_count_fallback, bitwise_count

        x = np.asarray([0, 1, 2, 3, 255, 1 << 40, (1 << 63) - 1], dtype=np.int64)
        assert np.array_equal(_bitwise_count_fallback(x), bitwise_count(x))

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 63) - 1), max_size=50))
    def test_fallback_matches_python_bit_count(self, values):
        from repro.utils.bitops import _bitwise_count_fallback

        x = np.asarray(values, dtype=np.int64)
        got = _bitwise_count_fallback(x)
        assert got.tolist() == [v.bit_count() for v in values]

    def test_fallback_preserves_shape(self):
        from repro.utils.bitops import _bitwise_count_fallback

        x = np.arange(12, dtype=np.int64).reshape(3, 4)
        assert _bitwise_count_fallback(x).shape == (3, 4)

    def test_fallback_scalar(self):
        from repro.utils.bitops import _bitwise_count_fallback

        assert int(_bitwise_count_fallback(np.int64(7))) == 3

    def test_shim_is_native_on_numpy2(self):
        from repro.utils import bitops

        if hasattr(np, "bitwise_count"):
            assert bitops.bitwise_count is np.bitwise_count
