"""Property tests for the wide (multi-word) label helpers.

Ground truth is Python's arbitrary-precision ints: every helper is
checked against the equivalent big-int computation via
``label_to_int`` / ``int_to_label_row`` round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.bitops import (
    MAX_LABEL_BITS,
    RADIX_SORT_THRESHOLD,
    argsort_labels,
    get_label_bit,
    hamming_labels,
    int_to_label_row,
    label_lsb,
    label_mask,
    label_sort_keys,
    label_to_int,
    narrow_labels,
    pack_bit_matrix,
    pairwise_hamming,
    permute_bits,
    popcount_labels,
    resize_label_words,
    shift_left_labels,
    shift_right_labels,
    swap_label_rows,
    unique_labels,
    unpack_bit_matrix,
    unpermute_bits,
    wide_mask,
    widen_labels,
    words_for_bits,
    zeros_labels,
)

wide_values = st.lists(
    st.integers(min_value=0, max_value=(1 << 192) - 1), min_size=1, max_size=20
)


def _as_wide(values, words=3):
    return np.stack([int_to_label_row(v, words) for v in values])


class TestRepresentation:
    @pytest.mark.parametrize(
        "dim,words", [(0, 1), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_words_for_bits(self, dim, words):
        assert words_for_bits(dim) == words

    def test_zeros_labels_picks_representation(self):
        assert zeros_labels(5, 30).shape == (5,)
        assert zeros_labels(5, 100).shape == (5, 2)
        assert zeros_labels(5, 100).dtype == np.uint64

    def test_widen_narrow_roundtrip(self):
        narrow = np.array([0, 1, 2**62, 5], dtype=np.int64)
        wide = widen_labels(narrow, 3)
        assert wide.shape == (4, 3)
        assert np.array_equal(narrow_labels(wide), narrow)

    def test_narrow_rejects_high_bits(self):
        wide = _as_wide([1 << 70])
        with pytest.raises(ValueError):
            narrow_labels(wide)

    def test_resize_words(self):
        wide = _as_wide([3, 1 << 100], words=2)
        assert resize_label_words(wide, 4).shape == (2, 4)
        with pytest.raises(ValueError):
            widen_labels(wide, 1)  # high bits set


class TestBigIntEquivalence:
    @given(wide_values)
    @settings(max_examples=60, deadline=None)
    def test_popcount(self, values):
        wide = _as_wide(values)
        expect = [bin(v).count("1") for v in values]
        assert popcount_labels(wide).tolist() == expect

    @given(wide_values, st.integers(min_value=0, max_value=191))
    @settings(max_examples=60, deadline=None)
    def test_shifts(self, values, k):
        wide = _as_wide(values)
        right = shift_right_labels(wide, k)
        left = shift_left_labels(wide, k)
        mask = (1 << 192) - 1
        for i, v in enumerate(values):
            assert label_to_int(right, i) == v >> k
            assert label_to_int(left, i) == (v << k) & mask

    @given(wide_values, st.integers(min_value=0, max_value=192))
    @settings(max_examples=60, deadline=None)
    def test_masks(self, values, width):
        wide = _as_wide(values)
        masked = wide & label_mask(width, wide)
        for i, v in enumerate(values):
            assert label_to_int(masked, i) == v & ((1 << width) - 1)

    @given(wide_values)
    @settings(max_examples=60, deadline=None)
    def test_sort_keys_order_numeric(self, values):
        wide = _as_wide(values)
        keys = label_sort_keys(wide)
        got = np.argsort(keys, kind="stable").tolist()
        expect = sorted(range(len(values)), key=lambda i: (values[i], i))
        assert got == expect

    @given(wide_values)
    @settings(max_examples=40, deadline=None)
    def test_unique_labels(self, values):
        wide = _as_wide(values)
        uniq, inverse = unique_labels(wide)
        expect = sorted(set(values))
        assert [label_to_int(uniq, i) for i in range(uniq.shape[0])] == expect
        for i, v in enumerate(values):
            assert label_to_int(uniq, int(inverse[i])) == v

    def test_hamming_and_pairwise(self):
        a = _as_wide([0, (1 << 100) | 3, (1 << 191)])
        ham = pairwise_hamming(a)
        assert ham[0, 1] == 3 and ham[0, 2] == 1 and ham[1, 2] == 4
        assert np.array_equal(ham, ham.T)
        assert hamming_labels(a[0:1], a[1:2]).tolist() == [3]

    def test_get_set_bit_lsb(self):
        a = _as_wide([1, 1 << 64, (1 << 64) | 1])
        assert get_label_bit(a, 0).tolist() == [1, 0, 1]
        assert get_label_bit(a, 64).tolist() == [0, 1, 1]
        assert label_lsb(a).tolist() == [1, 0, 1]


class TestPackUnpackPermute:
    @given(st.integers(min_value=64, max_value=150), st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_roundtrip(self, dim, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(12, dim), dtype=np.int64)
        labels = pack_bit_matrix(bits)
        assert labels.shape == (12, words_for_bits(dim))
        assert np.array_equal(unpack_bit_matrix(labels, dim), bits.astype(np.int8))

    @given(st.integers(min_value=64, max_value=150), st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_permute_roundtrip_and_agreement(self, dim, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(10, dim), dtype=np.int64)
        labels = pack_bit_matrix(bits)
        perm = rng.permutation(dim)
        permuted = permute_bits(labels, perm)
        # output bit j == input bit perm[j]
        assert np.array_equal(
            unpack_bit_matrix(permuted, dim), bits[:, perm].astype(np.int8)
        )
        assert np.array_equal(unpermute_bits(permuted, perm), labels)

    def test_permute_matches_narrow_when_embedded(self):
        # A narrow labeling widened to 2 words must permute identically.
        rng = np.random.default_rng(7)
        narrow = rng.integers(0, 1 << 40, size=16, dtype=np.int64)
        perm = rng.permutation(40)
        wide = widen_labels(narrow, 2)
        assert np.array_equal(
            narrow_labels(permute_bits(wide, perm)), permute_bits(narrow, perm)
        )


class TestRowOps:
    def test_swap_label_rows_wide_no_aliasing(self):
        a = _as_wide([5, 9, 1 << 100])
        swap_label_rows(a, 0, 2)
        assert label_to_int(a, 0) == 1 << 100 and label_to_int(a, 2) == 5

    def test_swap_label_rows_narrow(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        swap_label_rows(a, 0, 1)
        assert a.tolist() == [2, 1, 3]

    def test_wide_mask_boundaries(self):
        assert label_to_int(wide_mask(64, 2)[None, :], 0) == (1 << 64) - 1
        assert label_to_int(wide_mask(128, 2)[None, :], 0) == (1 << 128) - 1
        assert label_to_int(wide_mask(0, 2)[None, :], 0) == 0
        assert MAX_LABEL_BITS == 63


class TestArgsortLabels:
    """The radix-style fast path must equal the void-key stable argsort."""

    def _void_argsort(self, labels):
        return np.argsort(label_sort_keys(labels), kind="stable")

    @given(wide_values)
    @settings(max_examples=50, deadline=None)
    def test_small_arrays_match_void_path(self, values):
        labels = _as_wide(values)
        got = argsort_labels(labels)
        assert np.array_equal(got, self._void_argsort(labels))

    def test_radix_path_matches_void_path_above_threshold(self):
        rng = np.random.default_rng(0)
        n = RADIX_SORT_THRESHOLD + 500
        labels = rng.integers(0, 2**64, size=(n, 2), dtype=np.uint64)
        # duplicate rows exercise stability: equal keys keep input order
        labels[n // 2 :] = labels[: n - n // 2]
        assert np.array_equal(argsort_labels(labels), self._void_argsort(labels))

    def test_many_word_labels_stay_on_the_void_path_correctly(self):
        rng = np.random.default_rng(2)
        n = RADIX_SORT_THRESHOLD + 100
        labels = rng.integers(0, 2**64, size=(n, 4), dtype=np.uint64)
        assert np.array_equal(argsort_labels(labels), self._void_argsort(labels))

    def test_stability_on_all_equal_labels(self):
        labels = np.zeros((RADIX_SORT_THRESHOLD + 4, 2), dtype=np.uint64)
        assert np.array_equal(
            argsort_labels(labels), np.arange(labels.shape[0])
        )

    def test_narrow_path(self):
        labels = np.array([5, 1, 3, 1, 0], dtype=np.int64)
        assert np.array_equal(
            argsort_labels(labels), np.argsort(labels, kind="stable")
        )

    def test_order_is_numeric_bitvector_order(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2**64, size=(2000, 2), dtype=np.uint64)
        order = argsort_labels(labels)
        ints = [label_to_int(labels, v) for v in order]
        assert ints == sorted(ints)
