"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import (
    derive_rng,
    derive_seed,
    derive_seed_sequence,
    make_rng,
    spawn_rngs,
)


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_independent_streams(self):
        a, b = spawn_rngs(1, 2)
        assert not np.array_equal(a.integers(0, 10**9, 20), b.integers(0, 10**9, 20))

    def test_deterministic(self):
        xs = [g.integers(0, 10**9) for g in spawn_rngs(99, 3)]
        ys = [g.integers(0, 10**9) for g in spawn_rngs(99, 3)]
        assert xs == ys

    def test_adding_children_stable_prefix(self):
        xs = [g.integers(0, 10**9) for g in spawn_rngs(5, 2)]
        ys = [g.integers(0, 10**9) for g in spawn_rngs(5, 4)][:2]
        assert xs == ys

    def test_from_generator(self):
        gens = spawn_rngs(np.random.default_rng(3), 3)
        assert len(gens) == 3

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDerive:
    """Identity-keyed derivation backing the parallel experiment runner."""

    def test_deterministic(self):
        a = derive_rng(7, "case", "pgp", 0, "grid4x4", "c2").integers(0, 10**9, 8)
        b = derive_rng(7, "case", "pgp", 0, "grid4x4", "c2").integers(0, 10**9, 8)
        assert np.array_equal(a, b)

    def test_identity_sensitivity(self):
        base = derive_seed(7, "case", "pgp", 0, "grid4x4", "c2")
        assert base != derive_seed(8, "case", "pgp", 0, "grid4x4", "c2")
        assert base != derive_seed(7, "case", "pgp", 1, "grid4x4", "c2")
        assert base != derive_seed(7, "case", "pgp", 0, "grid4x4", "c3")

    def test_no_component_concatenation_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc"): components are joined
        # with a separator before hashing.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_seed_fits_int64(self):
        for identity in (("x",), ("y", 3), ("z", "w", 9)):
            s = derive_seed(0, *identity)
            assert 0 <= s < 2**63

    def test_streams_independent(self):
        a = derive_rng(7, "partition", "pgp", 0, 16).integers(0, 10**9, 20)
        b = derive_rng(7, "partition", "pgp", 0, 64).integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_sequence_type(self):
        assert isinstance(derive_seed_sequence(3, "a"), np.random.SeedSequence)
