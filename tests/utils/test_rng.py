"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_independent_streams(self):
        a, b = spawn_rngs(1, 2)
        assert not np.array_equal(a.integers(0, 10**9, 20), b.integers(0, 10**9, 20))

    def test_deterministic(self):
        xs = [g.integers(0, 10**9) for g in spawn_rngs(99, 3)]
        ys = [g.integers(0, 10**9) for g in spawn_rngs(99, 3)]
        assert xs == ys

    def test_adding_children_stable_prefix(self):
        xs = [g.integers(0, 10**9) for g in spawn_rngs(5, 2)]
        ys = [g.integers(0, 10**9) for g in spawn_rngs(5, 4)][:2]
        assert xs == ys

    def test_from_generator(self):
        gens = spawn_rngs(np.random.default_rng(3), 3)
        assert len(gens) == 3

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
