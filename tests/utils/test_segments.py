"""Tests for the CSR segment-reduction helpers."""

import numpy as np
import pytest

from repro.utils.segments import build_csr, group_ranks, group_reduce_sum, segment_sum


class TestSegmentSum:
    def test_basic(self):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        indptr = np.asarray([0, 2, 2, 5])
        assert segment_sum(values, indptr).tolist() == [3.0, 0.0, 12.0]

    def test_all_empty(self):
        out = segment_sum(np.empty(0), np.asarray([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_trailing_empty_segments(self):
        # Raw reduceat would raise on a start index == len(values).
        values = np.asarray([1.0, 2.0])
        indptr = np.asarray([0, 2, 2, 2])
        assert segment_sum(values, indptr).tolist() == [3.0, 0.0, 0.0]

    def test_matches_python_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n_seg = int(rng.integers(1, 12))
            counts = rng.integers(0, 6, size=n_seg)
            indptr = np.concatenate([[0], np.cumsum(counts)])
            values = rng.normal(size=int(indptr[-1]))
            expect = [values[a:b].sum() for a, b in zip(indptr[:-1], indptr[1:])]
            assert np.allclose(segment_sum(values, indptr), expect)

    def test_rejects_mismatched_indptr(self):
        with pytest.raises(ValueError):
            segment_sum(np.asarray([1.0, 2.0]), np.asarray([0, 1]))


class TestGroupReduceSum:
    def test_basic(self):
        keys = np.asarray([3, 1, 3, 1, 7])
        vals = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        uniq, sums = group_reduce_sum(keys, vals)
        assert uniq.tolist() == [1, 3, 7]
        assert sums.tolist() == [6.0, 4.0, 5.0]

    def test_empty(self):
        uniq, sums = group_reduce_sum(np.empty(0, np.int64), np.empty(0))
        assert uniq.size == 0 and sums.size == 0

    def test_single_group(self):
        uniq, sums = group_reduce_sum(np.asarray([5, 5, 5]), np.asarray([1.0, 1.0, 1.5]))
        assert uniq.tolist() == [5] and sums.tolist() == [3.5]

    def test_matches_python_reference(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            keys = rng.integers(0, 8, size=int(rng.integers(0, 30)))
            vals = rng.normal(size=keys.shape[0])
            uniq, sums = group_reduce_sum(keys, vals)
            expect = {int(k): float(vals[keys == k].sum()) for k in np.unique(keys)}
            assert {int(k): float(s) for k, s in zip(uniq, sums)} == pytest.approx(expect)

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            group_reduce_sum(np.asarray([1, 2]), np.asarray([1.0]))


class TestGroupRanks:
    def test_interleaved(self):
        assert group_ranks(np.asarray([0, 1, 0, 1, 0])).tolist() == [0, 0, 1, 1, 2]

    def test_empty(self):
        assert group_ranks(np.asarray([], dtype=np.int64)).size == 0

    def test_single_key(self):
        assert group_ranks(np.asarray([9, 9, 9])).tolist() == [0, 1, 2]

    def test_matches_python_reference(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 5, size=40)
        ranks = group_ranks(keys)
        seen: dict[int, int] = {}
        for i, k in enumerate(keys):
            assert ranks[i] == seen.get(int(k), 0)
            seen[int(k)] = seen.get(int(k), 0) + 1


class TestBuildCsr:
    def test_round_trip_triangle(self):
        us = np.asarray([0, 1, 0])
        vs = np.asarray([1, 2, 2])
        ws = np.asarray([1.0, 2.0, 3.0])
        indptr, indices, weights = build_csr(3, us, vs, ws)
        assert indptr.tolist() == [0, 2, 4, 6]
        assert weights.sum() == 2 * ws.sum()
        # neighbor sets per vertex
        assert sorted(indices[0:2].tolist()) == [1, 2]
        assert sorted(indices[2:4].tolist()) == [0, 2]
        assert sorted(indices[4:6].tolist()) == [0, 1]

    def test_isolated_vertices(self):
        indptr, indices, weights = build_csr(4, np.asarray([1]), np.asarray([2]), np.asarray([5.0]))
        assert indptr.tolist() == [0, 0, 1, 2, 2]
        assert indices.tolist() == [2, 1]

    def test_empty(self):
        indptr, indices, weights = build_csr(
            3, np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        )
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.size == 0
