"""Tests for the CSR segment-reduction helpers."""

import numpy as np
import pytest

from repro.utils.segments import build_csr, segment_sum


class TestSegmentSum:
    def test_basic(self):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        indptr = np.asarray([0, 2, 2, 5])
        assert segment_sum(values, indptr).tolist() == [3.0, 0.0, 12.0]

    def test_all_empty(self):
        out = segment_sum(np.empty(0), np.asarray([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_trailing_empty_segments(self):
        # Raw reduceat would raise on a start index == len(values).
        values = np.asarray([1.0, 2.0])
        indptr = np.asarray([0, 2, 2, 2])
        assert segment_sum(values, indptr).tolist() == [3.0, 0.0, 0.0]

    def test_matches_python_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n_seg = int(rng.integers(1, 12))
            counts = rng.integers(0, 6, size=n_seg)
            indptr = np.concatenate([[0], np.cumsum(counts)])
            values = rng.normal(size=int(indptr[-1]))
            expect = [values[a:b].sum() for a, b in zip(indptr[:-1], indptr[1:])]
            assert np.allclose(segment_sum(values, indptr), expect)

    def test_rejects_mismatched_indptr(self):
        with pytest.raises(ValueError):
            segment_sum(np.asarray([1.0, 2.0]), np.asarray([0, 1]))


class TestBuildCsr:
    def test_round_trip_triangle(self):
        us = np.asarray([0, 1, 0])
        vs = np.asarray([1, 2, 2])
        ws = np.asarray([1.0, 2.0, 3.0])
        indptr, indices, weights = build_csr(3, us, vs, ws)
        assert indptr.tolist() == [0, 2, 4, 6]
        assert weights.sum() == 2 * ws.sum()
        # neighbor sets per vertex
        assert sorted(indices[0:2].tolist()) == [1, 2]
        assert sorted(indices[2:4].tolist()) == [0, 2]
        assert sorted(indices[4:6].tolist()) == [0, 1]

    def test_isolated_vertices(self):
        indptr, indices, weights = build_csr(4, np.asarray([1]), np.asarray([2]), np.asarray([5.0]))
        assert indptr.tolist() == [0, 0, 1, 2, 2]
        assert indices.tolist() == [2, 1]

    def test_empty(self):
        indptr, indices, weights = build_csr(
            3, np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        )
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.size == 0
