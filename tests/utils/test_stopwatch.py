"""Tests for the stopwatch."""

import pytest

from repro.utils.stopwatch import Stopwatch


def test_context_manager_accumulates():
    sw = Stopwatch()
    with sw:
        sum(range(1000))
    first = sw.elapsed
    assert first > 0
    with sw:
        sum(range(1000))
    assert sw.elapsed > first


def test_double_start_raises():
    sw = Stopwatch().start()
    with pytest.raises(RuntimeError):
        sw.start()


def test_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_reset():
    sw = Stopwatch()
    with sw:
        pass
    sw.reset()
    assert sw.elapsed == 0.0
