"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_int_array,
    check_assignment,
    check_in_range,
    check_nonnegative,
    check_positive,
)


def test_check_positive():
    check_positive("x", 1)
    with pytest.raises(ValueError):
        check_positive("x", 0)


def test_check_nonnegative():
    check_nonnegative("x", 0)
    with pytest.raises(ValueError):
        check_nonnegative("x", -1)


def test_check_in_range():
    check_in_range("x", 0.5, 0, 1)
    with pytest.raises(ValueError):
        check_in_range("x", 2, 0, 1)


def test_as_int_array_length():
    out = as_int_array("a", [1, 2, 3], 3)
    assert out.dtype == np.int64
    with pytest.raises(ValueError):
        as_int_array("a", [1, 2], 3)
    with pytest.raises(ValueError):
        as_int_array("a", [[1], [2]])


def test_check_assignment():
    check_assignment("a", np.asarray([0, 1, 2]), 3)
    with pytest.raises(ValueError):
        check_assignment("a", np.asarray([0, 3]), 3)
    with pytest.raises(ValueError):
        check_assignment("a", np.asarray([-1]), 3)
    check_assignment("a", np.asarray([], dtype=np.int64), 0)
